package analysis

import (
	"testing"

	"repro/internal/kcmisa"
	"repro/internal/term"
	"repro/internal/word"
)

// FuzzImageFacts throws arbitrary code words at the whole-image
// analyzer. The property is robustness: no panic, guaranteed
// termination (the defensive fixpoint bounds), and a self-consistent
// artifact — every license must survive its own checker or the image
// must carry partition diagnostics.
func FuzzImageFacts(f *testing.F) {
	f.Add([]byte{}, uint8(1))
	seed := func(ins ...kcmisa.Instr) []byte {
		var out []byte
		for _, in := range ins {
			ws, err := kcmisa.Encode(in)
			if err != nil {
				continue
			}
			for _, w := range ws {
				for i := 0; i < 8; i++ {
					out = append(out, byte(uint64(w)>>(8*i)))
				}
			}
		}
		return out
	}
	f.Add(seed(
		kcmisa.Instr{Op: kcmisa.PutConst, R2: 1, K: word.FromInt(1)},
		kcmisa.Instr{Op: kcmisa.Call, L: 3, N: 1},
		kcmisa.Instr{Op: kcmisa.Proceed},
		kcmisa.Instr{Op: kcmisa.GetConst, R2: 1, K: word.FromInt(1)},
		kcmisa.Instr{Op: kcmisa.Proceed},
	), uint8(2))
	f.Add(seed(
		kcmisa.Instr{Op: kcmisa.TryMeElse, L: 2, N: 0},
		kcmisa.Instr{Op: kcmisa.Jump, L: 0},
		kcmisa.Instr{Op: kcmisa.TrustMe},
		kcmisa.Instr{Op: kcmisa.Builtin, N: kcmisa.BICall},
		kcmisa.Instr{Op: kcmisa.HaltFail},
	), uint8(3))

	f.Fuzz(func(t *testing.T, raw []byte, nPreds uint8) {
		code := make([]word.Word, len(raw)/8)
		for i := range code {
			var w uint64
			for b := 0; b < 8; b++ {
				w |= uint64(raw[i*8+b]) << (8 * b)
			}
			code[i] = word.Word(w)
		}
		if len(code) > 512 {
			code = code[:512]
		}
		// Scatter entry points across the block.
		entries := map[term.Indicator]uint32{}
		n := int(nPreds%8) + 1
		for i := 0; i < n && i < len(code); i++ {
			entries[term.Ind(term.Atom(string(rune('a'+i))), i%4)] =
				uint32(i * len(code) / n)
		}
		facts := AnalyzeImage(code, 0, entries, nil)
		if facts == nil {
			t.Fatal("nil facts")
		}
		_ = facts.Flat()
		if len(facts.Diags) == 0 {
			if ds := CheckLicenses(facts, code, 0); len(ds) != 0 {
				t.Fatalf("analyzer emitted unverifiable licenses: %s", diagString(ds))
			}
		}
		// Incremental update over the same words must also hold up.
		if len(code) > 0 {
			facts.Update(code, 0, entries, nil, 0, uint32(len(code)/2))
		}
	})
}
