package analysis

import (
	"testing"

	"repro/internal/kcmisa"
	"repro/internal/term"
	"repro/internal/word"
)

// TestUpdateReusesUntouchedPredFacts pins the incremental contract the
// dynamic database depends on: when Update is told one predicate's
// range changed, predicates outside that range — and outside its
// strongly-connected component — keep their exact *PredFacts values
// (pointer identity), so a per-predicate mutation re-analyzes only
// what it touched.
func TestUpdateReusesUntouchedPredFacts(t *testing.T) {
	k := func(n int32) word.Word { return word.FromInt(n) }
	preds := []testPred{
		{term.Ind("main", 0), []kcmisa.Instr{
			{Op: kcmisa.PutConst, R2: 1, K: k(7)},
			{Op: kcmisa.Call, L: 0, N: 1}, // patched to helper below
			{Op: kcmisa.Proceed},
		}},
		{term.Ind("helper", 1), []kcmisa.Instr{
			{Op: kcmisa.GetConst, R2: 1, K: k(7)},
			{Op: kcmisa.Proceed},
		}},
		{term.Ind("aux", 0), []kcmisa.Instr{
			{Op: kcmisa.PutConst, R2: 1, K: k(9)},
			{Op: kcmisa.Call, L: 0, N: 1}, // patched to aux2 below
			{Op: kcmisa.Proceed},
		}},
		{term.Ind("aux2", 1), []kcmisa.Instr{
			{Op: kcmisa.GetConst, R2: 1, K: k(9)},
			{Op: kcmisa.Proceed},
		}},
	}
	// Two passes: lay out once to learn entry addresses, then encode
	// with the call targets filled in.
	_, entries := buildImage(t, 0, preds)
	preds[0].code[1].L = int(entries[term.Ind("helper", 1)])
	preds[2].code[1].L = int(entries[term.Ind("aux2", 1)])
	code, entries := buildImage(t, 0, preds)

	f1 := AnalyzeImage(code, 0, entries, nil)
	if len(f1.Diags) != 0 {
		t.Fatalf("diags: %s", diagString(f1.Diags))
	}

	// Mutate helper's constant in place (same shape, one word changed)
	// and update over helper's range only.
	hLo := entries[term.Ind("helper", 1)]
	hf := f1.Pred(term.Ind("helper", 1))
	if hf == nil || hf.Start != hLo {
		t.Fatalf("helper facts missing or misplaced: %+v", hf)
	}
	preds[1].code[0].K = k(8)
	code2, _ := buildImage(t, 0, preds)
	if len(code2) != len(code) {
		t.Fatalf("mutation changed the layout: %d -> %d words", len(code), len(code2))
	}
	changed := 0
	for a := range code2 {
		if code2[a] != code[a] {
			if uint32(a) < hf.Start || uint32(a) >= hf.End {
				t.Fatalf("word %d outside helper [%d,%d) changed", a, hf.Start, hf.End)
			}
			changed++
		}
	}
	if changed == 0 {
		t.Fatal("mutation changed nothing")
	}

	f2 := f1.Update(code2, 0, entries, nil, hf.Start, hf.End)
	if len(f2.Diags) != 0 {
		t.Fatalf("update diags: %s", diagString(f2.Diags))
	}

	for _, pi := range []term.Indicator{term.Ind("aux", 0), term.Ind("aux2", 1), term.Ind("main", 0)} {
		if f2.Pred(pi) != f1.Pred(pi) {
			t.Errorf("%v facts rebuilt by an update that did not touch it", pi)
		}
	}
	if f2.Pred(term.Ind("helper", 1)) == f1.Pred(term.Ind("helper", 1)) {
		t.Error("helper facts reused despite its code changing")
	}
}
