package analysis

import (
	"fmt"

	"repro/internal/trace"
)

// OracleViolation is one observed contradiction of a determinism
// claim: a cp_restore event resumed inside a predicate the analyzer
// classified Det.
type OracleViolation struct {
	Pred   string // the predicate claimed deterministic
	Resume uint32 // the resumption code address of the restored choice point
	Seq    uint64 // event sequence number
}

func (v OracleViolation) String() string {
	return fmt.Sprintf("seq %d: cp_restore resumed at %d inside %s, which is classified det",
		v.Seq, v.Resume, v.Pred)
}

// Oracle is a trace hook holding the whole-image analyzer to its
// determinism claims: Det means "no surviving choice point on any
// path", so no deep fail may ever restore a choice point whose
// resumption address lies inside a Det predicate. Shallow fails are
// deliberately not checked — retrying clauses through the shadow
// registers is exactly what the KCM's delayed choice points make
// cheap, and a Det predicate may do it freely.
type Oracle struct {
	facts      *ImageFacts
	violations []OracleViolation
	restores   uint64
}

// NewOracle creates an oracle checking the given facts.
func NewOracle(f *ImageFacts) *Oracle { return &Oracle{facts: f} }

// Emit consumes one trace event.
func (o *Oracle) Emit(ev trace.Event) {
	switch ev.Kind {
	case trace.KCPRestore:
		o.restores++
		resume := uint32(ev.Arg)
		pf, ok := o.facts.PredAt(resume)
		if !ok {
			return // bootstrap choice point or external code
		}
		if pf.Det == Det {
			o.violations = append(o.violations, OracleViolation{
				Pred: pf.Name, Resume: resume, Seq: ev.Seq,
			})
		}
	default:
		// Only deep fails are visible to the soundness claim.
	}
}

// Violations returns the observed contradictions, nil when the run
// upheld every claim.
func (o *Oracle) Violations() []OracleViolation { return o.violations }

// Restores returns how many cp_restore events the oracle examined —
// a test that saw zero restores proved nothing.
func (o *Oracle) Restores() uint64 { return o.restores }
