package analysis

import (
	"sync"

	"repro/internal/word"
)

// The verdict cache memoises CheckEncoded over (block words, base,
// codeTop). The compile→load path verifies every block twice — the
// compiler's post-compile pass and the loader's pre-placement check —
// and an engine pool constructs every member machine from the same
// image, so load-time verification of an already-vetted block should
// be a hash lookup, not a re-analysis. Keyed by a 64-bit FNV-1a over
// the full content; the cache is an optimisation of a pure function,
// so the (astronomically unlikely) collision would only replay the
// other block's verdict.
var vcache = struct {
	sync.Mutex
	verdicts     map[uint64][]Diag
	hits, misses uint64
}{verdicts: map[uint64][]Diag{}}

// vcacheLimit bounds the cache; a full cache is cleared wholesale
// (load patterns are bursty, LRU bookkeeping is not worth it).
const vcacheLimit = 1024

func vcacheKey(code []word.Word, base, codeTop uint32) uint64 {
	h := hashWords(code)
	// Mix the placement: the same words are valid at one base and
	// invalid at another.
	h ^= (uint64(base)<<32 | uint64(codeTop)) * 0x9e3779b97f4a7c15
	return h
}

// CheckEncodedCached is CheckEncoded behind the verdict cache. The
// returned slice is shared across callers and must be treated as
// read-only.
func CheckEncodedCached(code []word.Word, base, codeTop uint32) []Diag {
	key := vcacheKey(code, base, codeTop)
	vcache.Lock()
	ds, ok := vcache.verdicts[key]
	if ok {
		vcache.hits++
		vcache.Unlock()
		return ds
	}
	vcache.misses++
	vcache.Unlock()

	ds = CheckEncoded(code, base, codeTop)

	vcache.Lock()
	if len(vcache.verdicts) >= vcacheLimit {
		vcache.verdicts = map[uint64][]Diag{}
	}
	vcache.verdicts[key] = ds
	vcache.Unlock()
	return ds
}

// VerdictCacheStats returns the cache's hit and miss counters.
func VerdictCacheStats() (hits, misses uint64) {
	vcache.Lock()
	defer vcache.Unlock()
	return vcache.hits, vcache.misses
}

// ResetVerdictCache clears the cache and its counters (tests).
func ResetVerdictCache() {
	vcache.Lock()
	defer vcache.Unlock()
	vcache.verdicts = map[uint64][]Diag{}
	vcache.hits, vcache.misses = 0, 0
}
