package analysis

import (
	"sort"

	"repro/internal/kcmisa"
)

// DeadArm is one switch_on_term arm proven unreachable by the mode
// analysis: dispatching can never take it for any entry mode observed
// at the fixpoint.
type DeadArm struct {
	Addr uint32 `json:"addr"` // address of the switch instruction
	Arm  string `json:"arm"`  // "var", "const", "list" or "struct"
}

// detResult carries the determinism classification of one unit plus
// the choice-point reports that fall out of the same dataflow.
type detResult struct {
	class DetClass
	// matNecks are instruction indices of neck instructions that may
	// materialise (or retarget) a choice point.
	matNecks []int
	// deadNecks are reachable necks that provably never store a
	// choice point: the shallow flag is always clear when they run.
	deadNecks []int
	deadArms  []DeadArm
	reach     []bool // per-block reachability under mode pruning
}

// prunedSuccs returns a block's successor edges with switch_on_term
// arms the mode analysis proves dead removed, and records the pruned
// arms. The argument register inspected is A1, whose abstract value
// at the switch is in mi.atInstr. Pruning relies only on definite
// facts (the unbound bit clear, a type bit clear), never on definite
// unboundness — the aliasing discipline of the domain.
func prunedSuccs(u *Unit, mi *modeInfo, bi int, dead *[]DeadArm) []edge {
	g := mi.g
	b := &g.blocks[bi]
	last := b.end - 1
	in := u.Code[last]
	if in.Op != kcmisa.SwitchOnTerm || in.SwT == nil {
		return b.succs
	}
	st, ok := mi.atInstr[last]
	if !ok {
		return b.succs
	}
	a1 := st.x[1]
	record := func(arm string) {
		addr := uint32(0)
		if u.Addr != nil {
			addr = u.Addr(last)
		}
		*dead = append(*dead, DeadArm{Addr: addr, Arm: arm})
	}
	liveTargets := map[int]bool{}
	keep := func(label int, live bool, arm string) {
		if label == kcmisa.FailLabel {
			return
		}
		if live {
			liveTargets[g.blockAt[label]] = true
		} else {
			record(arm)
		}
	}
	keep(in.SwT.Var, a1.MayUnbound(), "var")
	keep(in.SwT.Const, a1.MayAtomic(), "const")
	keep(in.SwT.List, a1.MayStruct(), "list")
	keep(in.SwT.Struct, a1.MayStruct(), "struct")
	var out []edge
	for _, e := range b.succs {
		if liveTargets[e.to] {
			out = append(out, e)
		}
	}
	return out
}

// analyzeDet classifies one unit. The model follows the machine's
// shallow-backtracking semantics exactly: try/retry arm the shadow
// registers along the clause edge, trust and trust_me disarm, a call
// or escape boundary clears the shallow flag, and only a Neck
// executed while armed can materialise (first alternative) or
// retarget (later alternatives) a choice point. A predicate none of
// whose reachable necks can ever run armed never owns a choice point
// and is deterministic; if choice points exist but every path from a
// materialising neck to a successful exit passes a cut, at most one
// solution escapes and the predicate is semi-deterministic.
func analyzeDet(u *Unit, mi *modeInfo) detResult {
	g := mi.g
	res := detResult{class: Det, reach: make([]bool, len(g.blocks))}
	if len(g.blocks) == 0 {
		return res
	}

	// succs with mode pruning, computed once per block.
	succs := make([][]edge, len(g.blocks))
	for bi := range g.blocks {
		if mi.seen[bi] {
			succs[bi] = prunedSuccs(u, mi, bi, &res.deadArms)
		}
	}

	// May-armed dataflow. armedIn[bi] is true when some execution can
	// enter the block with a live shallow alternative.
	armedIn := make([]bool, len(g.blocks))
	visited := make([]bool, len(g.blocks))
	neckArmed := map[int]bool{} // instruction index -> may run armed
	neckSeen := map[int]bool{}
	work := []int{0}
	visited[0] = true
	res.reach[0] = true
	for len(work) > 0 {
		bi := work[len(work)-1]
		work = work[:len(work)-1]
		b := &g.blocks[bi]
		armed := armedIn[bi]
		for idx := b.start; idx < b.end; idx++ {
			switch u.Code[idx].Op {
			case kcmisa.Neck:
				neckSeen[idx] = true
				if armed {
					neckArmed[idx] = true
				}
				armed = false
			case kcmisa.Call, kcmisa.Execute, kcmisa.Builtin,
				kcmisa.Cut, kcmisa.CutY:
				armed = false
			case kcmisa.TrustMe:
				armed = false
			}
		}
		last := b.end - 1
		op := u.Code[last].Op
		for _, e := range succs[bi] {
			out := armed
			switch op {
			case kcmisa.TryMeElse, kcmisa.RetryMeElse, kcmisa.Try, kcmisa.Retry:
				// Both the clause edge and the backtracking edge run
				// with a live alternative (the alternative itself for
				// the clause, the re-arming retry for the chain).
				out = true
			case kcmisa.Trust:
				out = false
			}
			changed := false
			if !visited[e.to] {
				visited[e.to] = true
				res.reach[e.to] = true
				armedIn[e.to] = out
				changed = true
			} else if out && !armedIn[e.to] {
				armedIn[e.to] = true
				changed = true
			}
			if changed {
				work = append(work, e.to)
			}
		}
	}
	for idx := range neckSeen {
		if neckArmed[idx] {
			res.matNecks = append(res.matNecks, idx)
		} else {
			res.deadNecks = append(res.deadNecks, idx)
		}
	}
	sort.Ints(res.matNecks)
	sort.Ints(res.deadNecks)
	if len(res.matNecks) == 0 {
		// No reachable neck can ever store or retarget a choice
		// point: the predicate never owns one.
		res.class = Det
		return res
	}

	// A choice point can exist. cpIn[bi]: may the block be entered
	// with this predicate's own choice point still live? Backtracking
	// edges conservatively carry a live choice point (the deep-fail
	// case); trust/trust_me pop it, cut discards it.
	cpIn := make([]bool, len(g.blocks))
	cpVisited := make([]bool, len(g.blocks))
	survives := false
	work = work[:0]
	work = append(work, 0)
	cpVisited[0] = true
	for len(work) > 0 {
		bi := work[len(work)-1]
		work = work[:len(work)-1]
		b := &g.blocks[bi]
		cp := cpIn[bi]
		for idx := b.start; idx < b.end; idx++ {
			switch u.Code[idx].Op {
			case kcmisa.Neck:
				if neckArmed[idx] {
					cp = true
				}
			case kcmisa.Cut, kcmisa.CutY:
				cp = false
			case kcmisa.TrustMe:
				cp = false
			case kcmisa.Proceed, kcmisa.Execute, kcmisa.Halt:
				if cp {
					survives = true
				}
			}
		}
		op := u.Code[b.end-1].Op
		for _, e := range succs[bi] {
			out := cp
			switch {
			case op == kcmisa.Trust:
				out = false
			case e.kind == edgeAlt:
				out = true // deep fail restored the choice point
			}
			changed := false
			if !cpVisited[e.to] {
				cpVisited[e.to] = true
				cpIn[e.to] = out
				changed = true
			} else if out && !cpIn[e.to] {
				cpIn[e.to] = true
				changed = true
			}
			if changed {
				work = append(work, e.to)
			}
		}
	}
	if survives {
		res.class = NonDet
	} else {
		res.class = SemiDet
	}
	return res
}
