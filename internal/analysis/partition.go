package analysis

import (
	"sort"

	"repro/internal/kcmisa"
	"repro/internal/term"
	"repro/internal/word"
)

// unitInfo is one predicate's slice of a linked image, converted back
// to the analyzer's pre-link form: instructions with intra-predicate
// labels remapped to local instruction indices. Call and execute
// targets are left as the absolute code-space addresses the linker
// wrote — the whole-image analyzer resolves them against the entry
// table, and the per-unit passes never read them.
type unitInfo struct {
	pi         term.Indicator
	start, end uint32 // code-space address range [start, end)
	instrs     []kcmisa.Instr
	addrs      []uint32 // code-space address of each instruction
	bad        bool     // a label left the predicate: flow analysis is off
}

// unit wraps the slice as an analyzable Unit.
func (ui *unitInfo) unit() *Unit {
	return &Unit{PI: ui.pi, Arity: ui.pi.Arity, Code: ui.instrs,
		Addr: func(i int) uint32 {
			if i < len(ui.addrs) {
				return ui.addrs[i]
			}
			return ui.start
		}}
}

// partitionEncoded decodes a linked image and splits it into
// per-predicate units by the sorted entry addresses: each predicate
// owns [its entry, the next entry), the last one owns through the end
// of the image, and words before the first entry (the bootstrap
// preamble) belong to no predicate. Structural problems — undecodable
// words, an entry off an instruction boundary, a branch label leaving
// its predicate — are reported as diagnostics; a unit with dangling
// labels is returned with bad set so callers skip flow analysis over
// it.
func partitionEncoded(code []word.Word, base uint32, entries map[term.Indicator]uint32) ([]unitInfo, []Diag) {
	ins, ds := decodeAll(code, base)
	byAddr := make(map[uint32]int, len(ins))
	for i, ei := range ins {
		byAddr[ei.addr] = i
	}

	type bound struct {
		pi         term.Indicator
		start, end uint32
	}
	var preds []bound
	for pi, a := range entries {
		preds = append(preds, bound{pi: pi, start: a})
	}
	sort.Slice(preds, func(i, j int) bool {
		if preds[i].start != preds[j].start {
			return preds[i].start < preds[j].start
		}
		return preds[i].pi.String() < preds[j].pi.String()
	})
	end := base + uint32(len(code))
	for i := range preds {
		if i+1 < len(preds) {
			preds[i].end = preds[i+1].start
		} else {
			preds[i].end = end
		}
	}

	var units []unitInfo
	for _, p := range preds {
		ui := unitInfo{pi: p.pi, start: p.start, end: p.end}
		i0, ok := byAddr[p.start]
		if !ok {
			u := Unit{PI: p.pi, Addr: func(int) uint32 { return p.start }}
			ds = append(ds, u.diag(0, BadTarget,
				"entry %v at %d is not an instruction boundary", p.pi, p.start))
			ui.bad = true
			units = append(units, ui)
			continue
		}
		localAt := map[uint32]int{}
		for i := i0; i < len(ins) && ins[i].addr < p.end; i++ {
			localAt[ins[i].addr] = len(ui.instrs)
			ui.instrs = append(ui.instrs, ins[i].in)
			ui.addrs = append(ui.addrs, ins[i].addr)
		}
		u := ui.unit()
		remap := func(idx int, l *int) {
			if *l == kcmisa.FailLabel {
				return
			}
			li, ok := localAt[uint32(*l)]
			if !ok {
				ds = append(ds, u.diag(idx, BadTarget,
					"%v targets %d outside predicate %v [%d,%d)",
					ui.instrs[idx].Op, *l, p.pi, p.start, p.end))
				ui.bad = true
				return
			}
			*l = li
		}
		for idx := range ui.instrs {
			in := &ui.instrs[idx]
			switch in.Op {
			case kcmisa.TryMeElse, kcmisa.RetryMeElse, kcmisa.Try,
				kcmisa.Retry, kcmisa.Trust, kcmisa.Jump:
				remap(idx, &in.L)
			case kcmisa.SwitchOnTerm:
				if in.SwT == nil {
					continue
				}
				t := *in.SwT
				remap(idx, &t.Var)
				remap(idx, &t.Const)
				remap(idx, &t.List)
				remap(idx, &t.Struct)
				in.SwT = &t
			case kcmisa.SwitchOnConst, kcmisa.SwitchOnStruct:
				remap(idx, &in.L)
				tbl := append([]kcmisa.SwEntry(nil), in.Sw...)
				for i := range tbl {
					remap(idx, &tbl[i].L)
				}
				in.Sw = tbl
			}
		}
		units = append(units, ui)
	}
	return units, ds
}
