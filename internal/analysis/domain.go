package analysis

import (
	"fmt"
	"strings"
)

// AbsVal is the abstract value of one argument register in the mode
// analysis: a bitmask over the three ground facts the analyzer tracks
// about the register's dereferenced term. The lattice is the powerset
// of {unbound, atomic, structured} ordered by inclusion; join is
// bitwise or, bottom is the empty mask ("no execution reaches this
// point yet").
//
// The aliasing discipline that keeps the domain sound: only
// put_variable (X or Y) produces a trusted AbsUnbound, and every
// unification-capable instruction widens all possibly-unbound values
// to AbsAny, because a unification can bind any variable through an
// alias the register file cannot see. Downstream consumers may
// therefore rely on "definitely bound" (the unbound bit is clear) and
// on definite type bits, but never on definite unboundness.
type AbsVal uint8

const (
	absUnboundBit AbsVal = 1 << iota
	absAtomicBit
	absStructBit
)

// The named lattice points. AbsBound and AbsAny are the two common
// joins; the remaining masks print as combinations.
const (
	AbsBottom  AbsVal = 0
	AbsUnbound AbsVal = absUnboundBit
	AbsAtomic  AbsVal = absAtomicBit
	AbsStruct  AbsVal = absStructBit
	AbsBound   AbsVal = absAtomicBit | absStructBit
	AbsAny     AbsVal = absUnboundBit | absAtomicBit | absStructBit
)

// Join returns the least upper bound of two abstract values.
func (v AbsVal) Join(w AbsVal) AbsVal { return v | w }

// MayUnbound reports whether the value may dereference to an unbound
// variable.
func (v AbsVal) MayUnbound() bool { return v&absUnboundBit != 0 }

// Bound reports whether the value definitely dereferences to a bound
// term — the only negative fact about variables the aliasing
// discipline lets a consumer trust.
func (v AbsVal) Bound() bool { return v != AbsBottom && v&absUnboundBit == 0 }

// MayAtomic reports whether the value may be an atomic term.
func (v AbsVal) MayAtomic() bool { return v&absAtomicBit != 0 }

// MayStruct reports whether the value may be a list cell or
// structure. The domain deliberately merges the two: the paper's
// switch_on_term separates them, so a pruning consumer may drop both
// the list and structure arms only when this bit is clear.
func (v AbsVal) MayStruct() bool { return v&absStructBit != 0 }

var absNames = map[AbsVal]string{
	AbsBottom:  "bottom",
	AbsUnbound: "unbound",
	AbsAtomic:  "atomic",
	AbsStruct:  "struct",
	AbsBound:   "bound",
	AbsAny:     "any",
}

func (v AbsVal) String() string {
	if s, ok := absNames[v]; ok {
		return s
	}
	var parts []string
	for _, b := range []AbsVal{absUnboundBit, absAtomicBit, absStructBit} {
		if v&b != 0 {
			parts = append(parts, absNames[b])
		}
	}
	return strings.Join(parts, "|")
}

// MarshalJSON renders the value as its stable string name.
func (v AbsVal) MarshalJSON() ([]byte, error) {
	return []byte(fmt.Sprintf("%q", v.String())), nil
}

// UnmarshalJSON parses the string form produced by MarshalJSON.
func (v *AbsVal) UnmarshalJSON(b []byte) error {
	s := strings.Trim(string(b), `"`)
	for val, name := range absNames {
		if s == name {
			*v = val
			return nil
		}
	}
	var out AbsVal
	for _, part := range strings.Split(s, "|") {
		switch part {
		case "unbound":
			out |= absUnboundBit
		case "atomic":
			out |= absAtomicBit
		case "struct":
			out |= absStructBit
		default:
			return fmt.Errorf("analysis: unknown abstract value %q", s)
		}
	}
	*v = out
	return nil
}

// unifyAbs is the abstract result both registers hold after a
// successful general unification of the two. If either side is
// definitely bound the result carries that side's type bits (a bound
// term cannot change); when both may be unbound nothing is known
// afterwards.
func unifyAbs(a, b AbsVal) AbsVal {
	switch {
	case a.Bound() && b.Bound():
		if m := a & b; m != AbsBottom {
			return m
		}
		// Contradictory type bits: the unification must fail, so the
		// fall-through state is unreachable. Bottom would poison joins
		// with "reachable" siblings, so stay conservative.
		return a | b
	case a.Bound():
		return a
	case b.Bound():
		return b
	}
	return AbsAny
}

// DetClass is the determinism classification of a predicate.
type DetClass uint8

const (
	// DetUnknown marks a predicate the analyzer could not classify
	// (structurally malformed code); consumers must assume NonDet.
	DetUnknown DetClass = iota
	// Det predicates never materialise a choice point on any
	// reachable path: the trace oracle may assert that no cp_restore
	// event ever resumes inside them.
	Det
	// SemiDet predicates may materialise a choice point but cut it on
	// every path to a successful exit: at most one solution escapes.
	SemiDet
	// NonDet predicates can exit with a surviving choice point.
	NonDet
)

var detNames = [...]string{
	DetUnknown: "unknown", Det: "det", SemiDet: "semidet", NonDet: "nondet",
}

func (d DetClass) String() string {
	if int(d) < len(detNames) {
		return detNames[d]
	}
	return "invalid"
}

// MarshalJSON renders the class as its stable string name.
func (d DetClass) MarshalJSON() ([]byte, error) {
	return []byte(fmt.Sprintf("%q", d.String())), nil
}

// UnmarshalJSON parses the string form produced by MarshalJSON.
func (d *DetClass) UnmarshalJSON(b []byte) error {
	s := strings.Trim(string(b), `"`)
	for i, n := range detNames {
		if s == n {
			*d = DetClass(i)
			return nil
		}
	}
	return fmt.Errorf("analysis: unknown determinism class %q", s)
}
