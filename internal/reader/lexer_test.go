package reader

import (
	"strings"
	"testing"
)

// lexAll tokenizes the whole input.
func lexAll(t *testing.T, src string) []token {
	t.Helper()
	lx := newLexer(src)
	var out []token
	for {
		tk, err := lx.next()
		if err != nil {
			t.Fatalf("lex %q: %v", src, err)
		}
		if tk.kind == tokEOF {
			return out
		}
		out = append(out, tk)
	}
}

func TestLexBasics(t *testing.T) {
	toks := lexAll(t, "foo(Bar, 12, -3) :- baz.")
	kinds := []tokenKind{tokAtom, tokPunct, tokVar, tokPunct, tokInt,
		tokPunct, tokAtom, tokInt, tokPunct, tokAtom, tokAtom, tokEnd}
	if len(toks) != len(kinds) {
		t.Fatalf("got %d tokens: %v", len(toks), toks)
	}
	for i, k := range kinds {
		if toks[i].kind != k {
			t.Fatalf("token %d: got kind %d (%v), want %d", i, toks[i].kind, toks[i], k)
		}
	}
}

func TestLexComments(t *testing.T) {
	toks := lexAll(t, "a. % rest of line\nb. /* block\nspanning */ c.")
	var atoms []string
	for _, tk := range toks {
		if tk.kind == tokAtom {
			atoms = append(atoms, tk.text)
		}
	}
	if strings.Join(atoms, "") != "abc" {
		t.Fatalf("atoms %v", atoms)
	}
}

func TestLexUnterminatedBlockComment(t *testing.T) {
	lx := newLexer("a. /* never closed")
	lx.next() // a
	lx.next() // .
	if _, err := lx.next(); err == nil {
		t.Fatal("expected unterminated-comment error")
	}
}

func TestLexCharCodes(t *testing.T) {
	cases := map[string]int64{
		"0'a":    'a',
		"0' ":    ' ',
		"0'\\n":  '\n',
		"0'\\\\": '\\',
		"0'0":    '0',
	}
	for src, want := range cases {
		toks := lexAll(t, src)
		if len(toks) != 1 || toks[0].kind != tokInt || toks[0].ival != want {
			t.Errorf("%q: got %v, want int %d", src, toks, want)
		}
	}
}

func TestLexQuotedAtoms(t *testing.T) {
	toks := lexAll(t, `'hello world' 'it''s' 'tab\t'`)
	want := []string{"hello world", "it's", "tab\t"}
	for i, w := range want {
		if toks[i].kind != tokAtom || toks[i].text != w {
			t.Errorf("token %d: got %q, want %q", i, toks[i].text, w)
		}
	}
}

func TestLexFloats(t *testing.T) {
	toks := lexAll(t, "3.25 1.0e3 2E2")
	if toks[0].kind != tokFloat || toks[0].fval != 3.25 {
		t.Errorf("3.25: %v", toks[0])
	}
	if toks[1].kind != tokFloat || toks[1].fval != 1000 {
		t.Errorf("1.0e3: %v", toks[1])
	}
	// 2E2 without a dot still scans as a float via the exponent rule.
	if toks[2].kind != tokFloat || toks[2].fval != 200 {
		t.Errorf("2E2: %v", toks[2])
	}
}

func TestLexIntRange(t *testing.T) {
	lx := newLexer("2147483647.")
	tk, err := lx.next()
	if err != nil || tk.ival != 2147483647 {
		t.Fatalf("max int32: %v %v", tk, err)
	}
	lx = newLexer("2147483648.")
	if _, err := lx.next(); err == nil {
		t.Fatal("int32 overflow must be rejected")
	}
}

func TestLexSymbolicAtoms(t *testing.T) {
	toks := lexAll(t, "a =.. b --> c ?- d")
	var syms []string
	for _, tk := range toks {
		if tk.kind == tokAtom && isSymbolChar(tk.text[0]) {
			syms = append(syms, tk.text)
		}
	}
	want := []string{"=..", "-->", "?-"}
	if strings.Join(syms, " ") != strings.Join(want, " ") {
		t.Fatalf("symbolic atoms %v, want %v", syms, want)
	}
}

func TestLexEndVsDotInTerm(t *testing.T) {
	// '.' binds as end-of-clause only before layout/EOF.
	toks := lexAll(t, "a.b.")
	// a, ".b"? No: '.' followed by 'b' lexes as a symbolic atom ".".
	// The important property: "a. b." has exactly two ends.
	ends := 0
	for _, tk := range lexAll(t, "a. b.") {
		if tk.kind == tokEnd {
			ends++
		}
	}
	if ends != 2 {
		t.Fatalf("want 2 clause ends, got %d", ends)
	}
	_ = toks
}

func TestLexStrings(t *testing.T) {
	toks := lexAll(t, `"ab\n"`)
	if len(toks) != 1 || toks[0].kind != tokString || toks[0].text != "ab\n" {
		t.Fatalf("string token %v", toks)
	}
}

func TestLexLineNumbers(t *testing.T) {
	lx := newLexer("a.\n\nb.")
	lx.next()
	lx.next()
	tk, _ := lx.next()
	if tk.line != 3 {
		t.Fatalf("b on line %d, want 3", tk.line)
	}
}

func TestParserErrorsCarryPosition(t *testing.T) {
	_, err := ParseAll("a.\nf(a.\n")
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("error without position: %v", err)
	}
}
