package reader_test

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/reader"
)

// FuzzReader feeds arbitrary text to the tokenizer and parser. The
// reader may reject anything, but it must never panic: it fronts
// every consulted file and every typed query. Seeds are the full
// benchmark sources and their queries, plus syntax-heavy fragments
// covering the operator table, quoting, and comment forms.
func FuzzReader(f *testing.F) {
	for _, p := range bench.Suite {
		f.Add(p.Source)
		f.Add(p.Query)
	}
	for _, s := range []string{
		"",
		"a.",
		"a :- b, c ; d -> e.",
		"X is 1 + 2 * -3 mod 4.",
		"p([H|T], 'quoted atom', \"string\", 0'c).",
		"p(_, _G123, {curly}, (a, b)).",
		"% comment\n/* block */ p.",
		"f(g(h(X)), [a,b|Y]) = Z.",
		"p :- !.",
		"0' ",
		"'unterminated",
		"p(",
		"...",
		":- dynamic foo/1.",
	} {
		f.Add(s)
	}

	f.Fuzz(func(t *testing.T, src string) {
		terms, err := reader.ParseAll(src)
		if err == nil {
			// Whatever parsed must print without panicking either.
			for _, tm := range terms {
				_ = tm.String()
			}
		}
		_, _ = reader.ParseTerm(src)
	})
}
