package reader

import (
	"io"
	"testing"

	"repro/internal/term"
)

func mustParse(t *testing.T, src string) term.Term {
	t.Helper()
	tm, err := ParseTerm(src)
	if err != nil {
		t.Fatalf("ParseTerm(%q): %v", src, err)
	}
	return tm
}

func TestParseConstants(t *testing.T) {
	cases := []struct {
		src  string
		want term.Term
	}{
		{"foo.", term.Atom("foo")},
		{"'hello world'.", term.Atom("hello world")},
		{"42.", term.Int(42)},
		{"-7.", term.Int(-7)},
		{"3.25.", term.Float(3.25)},
		{"X.", term.Var("X")},
		{"[].", term.NilAtom},
		{"0'a.", term.Int('a')},
		{"0'\\n.", term.Int('\n')},
	}
	for _, c := range cases {
		got := mustParse(t, c.src)
		if !term.Equal(got, c.want) {
			t.Errorf("%q: got %v, want %v", c.src, got, c.want)
		}
	}
}

func TestParseCompound(t *testing.T) {
	got := mustParse(t, "foo(bar, X, 3).")
	want := term.New("foo", term.Atom("bar"), term.Var("X"), term.Int(3))
	if !term.Equal(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestParseList(t *testing.T) {
	got := mustParse(t, "[a, b | T].")
	want := term.ListTail(term.Var("T"), term.Atom("a"), term.Atom("b"))
	if !term.Equal(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	got = mustParse(t, "[1,2,3].")
	want = term.List(term.Int(1), term.Int(2), term.Int(3))
	if !term.Equal(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestParseOperators(t *testing.T) {
	cases := []struct {
		src, canon string
	}{
		{"a + b * c.", "+(a,*(b,c))"},
		{"a * b + c.", "+(*(a,b),c)"},
		{"a - b - c.", "-(-(a,b),c)"}, // yfx is left associative
		{"a , b , c.", ",(a,,(b,c))"}, // xfy is right associative
		{"X is Y + 1.", "is(X,+(Y,1))"},
		{"p :- q, r.", ":-(p,,(q,r))"},
		{"\\+ p.", "\\+(p)"},
		{"- (3).", "-(3)"},
		{"a = b.", "=(a,b)"},
		{"(a , b).", ",(a,b)"},
		{"f(a, (b, c)).", "f(a,,(b,c))"},
		{"2 + 3 =:= 5.", "=:=(+(2,3),5)"},
	}
	for _, c := range cases {
		got := mustParse(t, c.src)
		if s := canon(got); s != c.canon {
			t.Errorf("%q: got %s, want %s", c.src, s, c.canon)
		}
	}
}

// canon prints a term in strict functional notation for comparison.
func canon(t term.Term) string {
	c, ok := t.(*term.Compound)
	if !ok {
		return t.String()
	}
	s := term.Atom(c.Functor).String() + "("
	for i, a := range c.Args {
		if i > 0 {
			s += ","
		}
		s += canon(a)
	}
	return s + ")"
}

func TestParseClausesAndComments(t *testing.T) {
	src := `
% line comment
app([], L, L).
app([H|T], L, [H|R]) :- app(T, L, R). /* block
comment */
main :- app([1,2], [3], X), write(X), nl.
`
	ts, err := ParseAll(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 3 {
		t.Fatalf("got %d clauses, want 3", len(ts))
	}
	if pi, _ := term.TermIndicator(ts[0]); pi != term.Ind("app", 3) {
		t.Errorf("first clause indicator = %v", pi)
	}
}

func TestAnonymousVarsAreFresh(t *testing.T) {
	tm := mustParse(t, "f(_, _).")
	c := tm.(*term.Compound)
	if term.Equal(c.Args[0], c.Args[1]) {
		t.Fatal("two _ should be distinct variables")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"f(a.",          // unterminated args
		"[a, b.",        // unterminated list
		"'unclosed.",    // unterminated quote
		"123456789012.", // out of 32-bit range
		"f(a) g(b).",    // missing operator
		"",              // handled as EOF by ReadTerm, error by ParseTerm path below
	}
	for _, src := range bad[:5] {
		if _, err := ParseTerm(src); err == nil {
			t.Errorf("%q: expected error", src)
		}
	}
	if _, err := New("").ReadTerm(); err != io.EOF {
		t.Errorf("empty input: got %v, want io.EOF", err)
	}
}

func TestReadAllEOFAfterClauses(t *testing.T) {
	p := New("a. b.")
	for i := 0; i < 2; i++ {
		if _, err := p.ReadTerm(); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := p.ReadTerm(); err != io.EOF {
		t.Fatalf("got %v, want io.EOF", err)
	}
}

func TestStringIsCodeList(t *testing.T) {
	got := mustParse(t, `"ab".`)
	want := term.List(term.Int('a'), term.Int('b'))
	if !term.Equal(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}
