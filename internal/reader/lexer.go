// Package reader implements a Prolog reader: a tokenizer and an
// operator-precedence parser covering the clause syntax used by the
// PLM benchmark suite and the KCM system sources (atoms, variables,
// integers, floats, lists, operators with the standard table,
// comments, quoted atoms).
package reader

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokAtom
	tokVar
	tokInt
	tokFloat
	tokString // "..." — read as a code list
	tokPunct  // ( ) [ ] { } , |
	tokEnd    // clause-terminating '.'
	tokOpenCT // '(' immediately after an atom: functor application
)

type token struct {
	kind tokenKind
	text string
	ival int64
	fval float64
	line int
	col  int
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "<eof>"
	case tokEnd:
		return "."
	case tokInt:
		return fmt.Sprintf("%d", t.ival)
	case tokFloat:
		return fmt.Sprintf("%g", t.fval)
	default:
		return t.text
	}
}

type lexer struct {
	src  string
	pos  int
	line int
	col  int
}

func newLexer(src string) *lexer { return &lexer{src: src, line: 1, col: 1} }

const symbolChars = `+-*/\^<>=~:.?@#&$`

func isSymbolChar(r byte) bool { return strings.IndexByte(symbolChars, r) >= 0 }

func isAlnum(r byte) bool {
	return r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r >= '0' && r <= '9' || r == '_'
}

func (lx *lexer) errf(format string, args ...any) error {
	return fmt.Errorf("line %d:%d: %s", lx.line, lx.col, fmt.Sprintf(format, args...))
}

func (lx *lexer) peek() byte {
	if lx.pos >= len(lx.src) {
		return 0
	}
	return lx.src[lx.pos]
}

func (lx *lexer) peek2() byte {
	if lx.pos+1 >= len(lx.src) {
		return 0
	}
	return lx.src[lx.pos+1]
}

func (lx *lexer) advance() byte {
	c := lx.src[lx.pos]
	lx.pos++
	if c == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return c
}

// skipLayout consumes whitespace and comments. It returns an error on
// an unterminated block comment.
func (lx *lexer) skipLayout() error {
	for lx.pos < len(lx.src) {
		c := lx.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			lx.advance()
		case c == '%':
			for lx.pos < len(lx.src) && lx.peek() != '\n' {
				lx.advance()
			}
		case c == '/' && lx.peek2() == '*':
			lx.advance()
			lx.advance()
			for {
				if lx.pos >= len(lx.src) {
					return lx.errf("unterminated block comment")
				}
				if lx.peek() == '*' && lx.peek2() == '/' {
					lx.advance()
					lx.advance()
					break
				}
				lx.advance()
			}
		default:
			return nil
		}
	}
	return nil
}

// next returns the next token. prevWasName tells the lexer whether
// the previous token could be a functor name, so that '(' becomes an
// application paren (tokOpenCT) only when glued to it.
func (lx *lexer) next() (token, error) {
	if err := lx.skipLayout(); err != nil {
		return token{}, err
	}
	tk := token{line: lx.line, col: lx.col}
	if lx.pos >= len(lx.src) {
		tk.kind = tokEOF
		return tk, nil
	}
	c := lx.peek()
	switch {
	case c >= '0' && c <= '9':
		return lx.number()
	case c >= 'a' && c <= 'z':
		start := lx.pos
		for lx.pos < len(lx.src) && isAlnum(lx.peek()) {
			lx.advance()
		}
		tk.kind = tokAtom
		tk.text = lx.src[start:lx.pos]
		return tk, nil
	case c >= 'A' && c <= 'Z' || c == '_':
		start := lx.pos
		for lx.pos < len(lx.src) && isAlnum(lx.peek()) {
			lx.advance()
		}
		tk.kind = tokVar
		tk.text = lx.src[start:lx.pos]
		return tk, nil
	case c == '\'':
		return lx.quoted('\'')
	case c == '"':
		t, err := lx.quoted('"')
		if err != nil {
			return t, err
		}
		t.kind = tokString
		return t, nil
	case c == '(' || c == ')' || c == '[' || c == ']' || c == '{' || c == '}' || c == ',' || c == '|':
		lx.advance()
		tk.kind = tokPunct
		tk.text = string(c)
		return tk, nil
	case c == '!' || c == ';':
		lx.advance()
		tk.kind = tokAtom
		tk.text = string(c)
		return tk, nil
	case isSymbolChar(c):
		// A '.' followed by layout or EOF terminates the clause.
		if c == '.' {
			n := lx.peek2()
			if n == 0 || n == ' ' || n == '\t' || n == '\n' || n == '\r' || n == '%' {
				lx.advance()
				tk.kind = tokEnd
				return tk, nil
			}
		}
		start := lx.pos
		for lx.pos < len(lx.src) && isSymbolChar(lx.peek()) {
			lx.advance()
		}
		tk.kind = tokAtom
		tk.text = lx.src[start:lx.pos]
		return tk, nil
	case c == 0:
		return tk, lx.errf("NUL byte in input")
	default:
		if c >= 0x80 {
			return tk, lx.errf("non-ASCII character %q", rune(c))
		}
		return tk, lx.errf("unexpected character %q", rune(c))
	}
}

func (lx *lexer) number() (token, error) {
	tk := token{line: lx.line, col: lx.col}
	start := lx.pos
	for lx.pos < len(lx.src) && lx.peek() >= '0' && lx.peek() <= '9' {
		lx.advance()
	}
	// 0'c character code.
	if lx.pos-start == 1 && lx.src[start] == '0' && lx.peek() == '\'' {
		lx.advance()
		if lx.pos >= len(lx.src) {
			return tk, lx.errf("unterminated character code")
		}
		c := lx.advance()
		if c == '\\' {
			r, err := lx.escape()
			if err != nil {
				return tk, err
			}
			c = byte(r)
		}
		tk.kind = tokInt
		tk.ival = int64(c)
		return tk, nil
	}
	isFloat := false
	if lx.peek() == '.' && lx.peek2() >= '0' && lx.peek2() <= '9' {
		isFloat = true
		lx.advance()
		for lx.pos < len(lx.src) && lx.peek() >= '0' && lx.peek() <= '9' {
			lx.advance()
		}
	}
	if lx.peek() == 'e' || lx.peek() == 'E' {
		save := lx.pos
		lx.advance()
		if lx.peek() == '+' || lx.peek() == '-' {
			lx.advance()
		}
		if lx.peek() >= '0' && lx.peek() <= '9' {
			isFloat = true
			for lx.pos < len(lx.src) && lx.peek() >= '0' && lx.peek() <= '9' {
				lx.advance()
			}
		} else {
			lx.pos = save
		}
	}
	text := lx.src[start:lx.pos]
	if isFloat {
		var f float64
		if _, err := fmt.Sscanf(text, "%g", &f); err != nil {
			return tk, lx.errf("bad float %q", text)
		}
		tk.kind = tokFloat
		tk.fval = f
		return tk, nil
	}
	var v int64
	for i := 0; i < len(text); i++ {
		v = v*10 + int64(text[i]-'0')
		if v > 1<<40 {
			return tk, lx.errf("integer literal %q out of 32-bit range", text)
		}
	}
	if v > 1<<31-1 {
		return tk, lx.errf("integer literal %q out of 32-bit range", text)
	}
	tk.kind = tokInt
	tk.ival = v
	return tk, nil
}

func (lx *lexer) escape() (rune, error) {
	if lx.pos >= len(lx.src) {
		return 0, lx.errf("unterminated escape")
	}
	c := lx.advance()
	switch c {
	case 'n':
		return '\n', nil
	case 't':
		return '\t', nil
	case 'r':
		return '\r', nil
	case 'a':
		return 7, nil
	case 'b':
		return 8, nil
	case 'f':
		return 12, nil
	case 'v':
		return 11, nil
	case '\\', '\'', '"', '`':
		return rune(c), nil
	case '0':
		return 0, nil
	default:
		return 0, lx.errf("unknown escape \\%c", c)
	}
}

func (lx *lexer) quoted(q byte) (token, error) {
	tk := token{line: lx.line, col: lx.col, kind: tokAtom}
	lx.advance() // opening quote
	var b strings.Builder
	for {
		if lx.pos >= len(lx.src) {
			return tk, lx.errf("unterminated quoted token")
		}
		c := lx.advance()
		switch {
		case c == q:
			if lx.peek() == q { // doubled quote
				lx.advance()
				b.WriteByte(q)
				continue
			}
			tk.text = b.String()
			return tk, nil
		case c == '\\':
			if lx.peek() == '\n' { // line continuation
				lx.advance()
				continue
			}
			r, err := lx.escape()
			if err != nil {
				return tk, err
			}
			b.WriteRune(r)
		default:
			if c >= 0x80 && !unicode.IsPrint(rune(c)) {
				return tk, lx.errf("bad character in quoted token")
			}
			b.WriteByte(c)
		}
	}
}
