package reader

import (
	"fmt"
	"io"

	"repro/internal/term"
)

// opType is the operator fixity class.
type opType int

const (
	xfx opType = iota
	xfy
	yfx
	fy
	fx
)

type opDef struct {
	prec int
	typ  opType
}

// opTable is the standard (Edinburgh) operator table used by SEPIA
// and the benchmark sources.
var prefixOps = map[string]opDef{
	":-": {1200, fx}, "?-": {1200, fx},
	"\\+": {900, fy}, "not": {900, fy},
	"-": {200, fy}, "+": {200, fy}, "\\": {200, fy},
}

var infixOps = map[string]opDef{
	":-": {1200, xfx}, "-->": {1200, xfx},
	";":  {1100, xfy},
	"->": {1050, xfy},
	",":  {1000, xfy},
	"=":  {700, xfx}, "\\=": {700, xfx}, "==": {700, xfx}, "\\==": {700, xfx},
	"@<": {700, xfx}, "@>": {700, xfx}, "@=<": {700, xfx}, "@>=": {700, xfx},
	"is": {700, xfx}, "=:=": {700, xfx}, "=\\=": {700, xfx},
	"<": {700, xfx}, ">": {700, xfx}, "=<": {700, xfx}, ">=": {700, xfx},
	"=..": {700, xfx},
	"+":   {500, yfx}, "-": {500, yfx}, "/\\": {500, yfx}, "\\/": {500, yfx}, "xor": {500, yfx},
	"*": {400, yfx}, "/": {400, yfx}, "//": {400, yfx},
	"mod": {400, yfx}, "rem": {400, yfx}, "<<": {400, yfx}, ">>": {400, yfx},
	"**": {200, xfx}, "^": {200, xfy},
}

// Parser reads Prolog terms from a source string.
type Parser struct {
	lx       *lexer
	tok      token
	tokErr   error
	glued    bool // no layout between previous token and tok
	freshN   int
	varsUsed map[string]int
}

// New creates a parser over src.
func New(src string) *Parser {
	p := &Parser{lx: newLexer(src)}
	p.advance()
	return p
}

func (p *Parser) advance() {
	before := p.lx.pos
	p.tok, p.tokErr = p.lx.next()
	// glued: the token starts exactly where the previous one ended.
	p.glued = p.tokErr == nil && tokenStart(p.lx, p.tok) == before
}

// tokenStart reconstructs where tok began: the lexer position minus
// the token text length. Only meaningful for the adjacency test of
// '(' after an atom, where the token is a single byte.
func tokenStart(lx *lexer, tk token) int {
	switch tk.kind {
	case tokPunct:
		return lx.pos - 1
	default:
		return -1
	}
}

func (p *Parser) errf(format string, args ...any) error {
	return fmt.Errorf("line %d:%d: %s", p.tok.line, p.tok.col, fmt.Sprintf(format, args...))
}

// ReadTerm reads the next clause-terminated term. It returns io.EOF
// at end of input.
func (p *Parser) ReadTerm() (term.Term, error) {
	if p.tokErr != nil {
		return nil, p.tokErr
	}
	if p.tok.kind == tokEOF {
		return nil, io.EOF
	}
	p.varsUsed = make(map[string]int)
	t, err := p.parse(1200)
	if err != nil {
		return nil, err
	}
	if p.tokErr != nil {
		return nil, p.tokErr
	}
	if p.tok.kind != tokEnd {
		return nil, p.errf("operator expected before %q (unterminated clause?)", p.tok.String())
	}
	p.advance()
	return t, nil
}

// ReadAll reads every clause in the input.
func (p *Parser) ReadAll() ([]term.Term, error) {
	var out []term.Term
	for {
		t, err := p.ReadTerm()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, t)
	}
}

// ParseAll parses a whole program text.
func ParseAll(src string) ([]term.Term, error) { return New(src).ReadAll() }

// ParseTerm parses a single term (the input must contain exactly one
// clause-terminated term).
func ParseTerm(src string) (term.Term, error) {
	p := New(src)
	t, err := p.ReadTerm()
	if err != nil {
		return nil, err
	}
	if p.tok.kind != tokEOF {
		return nil, p.errf("trailing input after term")
	}
	return t, nil
}

// parse parses a term whose principal operator has precedence at most
// maxPrec, returning the term.
func (p *Parser) parse(maxPrec int) (term.Term, error) {
	left, leftPrec, err := p.parsePrimary(maxPrec)
	if err != nil {
		return nil, err
	}
	return p.parseInfix(left, leftPrec, maxPrec)
}

func (p *Parser) parseInfix(left term.Term, leftPrec, maxPrec int) (term.Term, error) {
	for {
		if p.tokErr != nil {
			return nil, p.tokErr
		}
		var name string
		switch {
		case p.tok.kind == tokAtom:
			name = p.tok.text
		case p.tok.kind == tokPunct && p.tok.text == ",":
			name = ","
		case p.tok.kind == tokPunct && p.tok.text == "|" && maxPrec >= 1100:
			name = ";" // '|' as disjunction at clause level
		default:
			return left, nil
		}
		op, ok := infixOps[name]
		if !ok || op.prec > maxPrec {
			return left, nil
		}
		leftMax, rightMax := op.prec-1, op.prec-1
		if op.typ == xfy {
			rightMax = op.prec
		}
		if op.typ == yfx {
			leftMax = op.prec
		}
		if leftPrec > leftMax {
			return left, nil
		}
		p.advance()
		right, err := p.parse(rightMax)
		if err != nil {
			return nil, err
		}
		left = term.New(term.Atom(name), left, right)
		leftPrec = op.prec
	}
}

// parsePrimary parses one operand: a constant, variable, compound,
// parenthesised term, list, curly term or prefix-operator application.
func (p *Parser) parsePrimary(maxPrec int) (term.Term, int, error) {
	if p.tokErr != nil {
		return nil, 0, p.tokErr
	}
	tk := p.tok
	switch tk.kind {
	case tokEOF:
		return nil, 0, p.errf("unexpected end of input")
	case tokEnd:
		return nil, 0, p.errf("unexpected end of clause")
	case tokInt:
		p.advance()
		return term.Int(int32(tk.ival)), 0, nil
	case tokFloat:
		p.advance()
		return term.Float(tk.fval), 0, nil
	case tokVar:
		p.advance()
		if tk.text == "_" {
			p.freshN++
			return term.Var(fmt.Sprintf("_G%d", p.freshN)), 0, nil
		}
		p.varsUsed[tk.text]++
		return term.Var(tk.text), 0, nil
	case tokString:
		p.advance()
		elems := make([]term.Term, len(tk.text))
		for i := 0; i < len(tk.text); i++ {
			elems[i] = term.Int(int32(tk.text[i]))
		}
		return term.List(elems...), 0, nil
	case tokPunct:
		switch tk.text {
		case "(":
			p.advance()
			t, err := p.parse(1200)
			if err != nil {
				return nil, 0, err
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, 0, err
			}
			return t, 0, nil
		case "[":
			p.advance()
			t, err := p.parseList()
			return t, 0, err
		case "{":
			p.advance()
			if p.tok.kind == tokPunct && p.tok.text == "}" {
				p.advance()
				return term.Atom("{}"), 0, nil
			}
			t, err := p.parse(1200)
			if err != nil {
				return nil, 0, err
			}
			if err := p.expectPunct("}"); err != nil {
				return nil, 0, err
			}
			return term.New("{}", t), 0, nil
		}
		return nil, 0, p.errf("unexpected %q", tk.text)
	case tokAtom:
		p.advance()
		// Functor application: '(' glued to the atom.
		if p.tok.kind == tokPunct && p.tok.text == "(" && p.glued {
			p.advance()
			args, err := p.parseArgs()
			if err != nil {
				return nil, 0, err
			}
			return term.New(term.Atom(tk.text), args...), 0, nil
		}
		// Negative numeric literal.
		if tk.text == "-" {
			if p.tok.kind == tokInt {
				v := p.tok.ival
				p.advance()
				return term.Int(int32(-v)), 0, nil
			}
			if p.tok.kind == tokFloat {
				v := p.tok.fval
				p.advance()
				return term.Float(-v), 0, nil
			}
		}
		// Prefix operator.
		if op, ok := prefixOps[tk.text]; ok && op.prec <= maxPrec && p.canStartTerm() {
			argMax := op.prec
			if op.typ == fx {
				argMax--
			}
			arg, err := p.parse(argMax)
			if err != nil {
				return nil, 0, err
			}
			return term.New(term.Atom(tk.text), arg), op.prec, nil
		}
		// Plain atom; if it is also an operator name it carries that
		// precedence when used as an operand.
		prec := 0
		if op, ok := infixOps[tk.text]; ok {
			prec = op.prec
		}
		return term.Atom(tk.text), prec, nil
	}
	return nil, 0, p.errf("unexpected token %v", tk)
}

// canStartTerm reports whether the current token can begin an operand
// (so a prefix operator really applies to something).
func (p *Parser) canStartTerm() bool {
	switch p.tok.kind {
	case tokInt, tokFloat, tokVar, tokString:
		return true
	case tokAtom:
		// An infix operator cannot start a term unless it is also
		// prefix or stands alone; accept and let recursion decide.
		_, isInfix := infixOps[p.tok.text]
		_, isPrefix := prefixOps[p.tok.text]
		return !isInfix || isPrefix
	case tokPunct:
		return p.tok.text == "(" || p.tok.text == "[" || p.tok.text == "{"
	}
	return false
}

func (p *Parser) parseArgs() ([]term.Term, error) {
	var args []term.Term
	for {
		a, err := p.parse(999)
		if err != nil {
			return nil, err
		}
		args = append(args, a)
		if p.tok.kind == tokPunct && p.tok.text == "," {
			p.advance()
			continue
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return args, nil
	}
}

func (p *Parser) parseList() (term.Term, error) {
	if p.tok.kind == tokPunct && p.tok.text == "]" {
		p.advance()
		return term.NilAtom, nil
	}
	var elems []term.Term
	for {
		e, err := p.parse(999)
		if err != nil {
			return nil, err
		}
		elems = append(elems, e)
		if p.tok.kind == tokPunct {
			switch p.tok.text {
			case ",":
				p.advance()
				continue
			case "|":
				p.advance()
				tail, err := p.parse(999)
				if err != nil {
					return nil, err
				}
				if err := p.expectPunct("]"); err != nil {
					return nil, err
				}
				return term.ListTail(tail, elems...), nil
			case "]":
				p.advance()
				return term.List(elems...), nil
			}
		}
		return nil, p.errf("expected ',' '|' or ']' in list, got %v", p.tok)
	}
}

func (p *Parser) expectPunct(s string) error {
	if p.tokErr != nil {
		return p.tokErr
	}
	if p.tok.kind != tokPunct || p.tok.text != s {
		return p.errf("expected %q, got %v", s, p.tok)
	}
	p.advance()
	return nil
}
