// Package engine serves concurrent queries from a pool of warm KCM
// machines. The paper's KCM is a back-end processor: a host holds the
// compiled image and dispatches goals to the accelerator, which is
// exactly the shape of a serving system — one compiled image, many
// independent machine states. A Pool builds each machine once per
// image (loading code and heating the host-side predecode cache) and
// thereafter resets and re-boots it per query, so steady-state query
// dispatch costs no image loading and no allocation of machine state.
//
// Machines sharing an image are safe to run concurrently: the image
// and its symbol table are read-only during execution (term.SymTab is
// internally locked for the readback path), and each machine owns its
// simulated memory, caches and MMU.
package engine

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"

	"repro/internal/asm"
	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/snapshot"
	"repro/internal/trace"
)

// Pool is a fixed-size pool of machines per compiled image. The zero
// value is not usable; call New.
type Pool struct {
	cfg      machine.Config
	size     int
	autoWarm bool

	mu     sync.Mutex
	images map[*asm.Image]*imagePool
	dyn    map[*machine.Machine]*dynState // tenant delta each machine carries
	agg    *trace.Agg                     // pool-wide profile; nil until EnableProfiling
}

// imagePool tracks the machines built for one image. free is buffered
// to the pool size, so release never blocks; built (guarded by
// Pool.mu) counts machines in existence, capping construction.
type imagePool struct {
	im     *asm.Image
	free   chan *machine.Machine
	built  int
	warmed bool // WithWarm already ran for this image
}

// PoolOption configures a Pool at construction. The options mirror
// core's query options, so server configuration and library
// configuration read identically.
type PoolOption func(*Pool)

// WithConfig replaces the whole machine configuration the pool builds
// its machines with. Apply it before the options that refine the
// configuration (WithFusion); options are applied in order.
func WithConfig(cfg machine.Config) PoolOption {
	return func(p *Pool) { p.cfg = cfg }
}

// WithPoolSize caps the machines built per image (<= 0 selects
// GOMAXPROCS(0)).
func WithPoolSize(n int) PoolOption {
	return func(p *Pool) { p.size = n }
}

// WithWarm makes the pool warm each image's full machine complement
// on its first query (the paper's warm-run protocol), so even the
// first client-visible query runs on warm simulated caches. Without
// it, Warm stays available as an explicit call.
func WithWarm(on bool) PoolOption {
	return func(p *Pool) { p.autoWarm = on }
}

// WithFusion toggles the superinstruction fusion tier for every pool
// machine (on by default; host-side speed only, simulated counters
// are identical either way).
func WithFusion(on bool) PoolOption {
	return func(p *Pool) {
		if on {
			p.cfg.Fusion = machine.On
		} else {
			p.cfg.Fusion = machine.Off
		}
	}
}

// WithProfiling arms pool-wide per-predicate cycle profiling from the
// first machine built; read the aggregate with Profile.
func WithProfiling(on bool) PoolOption {
	return func(p *Pool) {
		if on {
			p.EnableProfiling()
		}
	}
}

// New creates a machine pool. With no options it serves each image
// with up to GOMAXPROCS(0) default-configuration machines.
func New(options ...PoolOption) *Pool {
	p := &Pool{
		images: make(map[*asm.Image]*imagePool),
		dyn:    make(map[*machine.Machine]*dynState),
	}
	for _, opt := range options {
		opt(p)
	}
	if p.size <= 0 {
		p.size = runtime.GOMAXPROCS(0)
	}
	return p
}

// NewPool creates a pool that serves each image with up to
// machinesPerImage concurrent machines, all built with cfg.
// machinesPerImage <= 0 selects GOMAXPROCS(0).
//
// Deprecated: use New(WithConfig(cfg), WithPoolSize(machinesPerImage)).
func NewPool(cfg machine.Config, machinesPerImage int) *Pool {
	return New(WithConfig(cfg), WithPoolSize(machinesPerImage))
}

// Size is the per-image machine cap.
func (p *Pool) Size() int { return p.size }

// PoolStats is a point-in-time occupancy snapshot, the pool half of
// the kcmd /v1/stats endpoint.
type PoolStats struct {
	Size   int `json:"size"`   // per-image machine cap
	Images int `json:"images"` // distinct images served
	Built  int `json:"built"`  // machines in existence
	Idle   int `json:"idle"`   // machines parked in free lists
	InUse  int `json:"in_use"` // Built - Idle: leased to queries/sessions
}

// Stats reports pool occupancy across all images. Machines held by
// open sessions count as in use.
func (p *Pool) Stats() PoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	st := PoolStats{Size: p.size, Images: len(p.images)}
	for _, ip := range p.images {
		st.Built += ip.built
		st.Idle += len(ip.free)
	}
	st.InUse = st.Built - st.Idle
	return st
}

// warmOnce runs Warm for im the first time the pool serves it.
func (p *Pool) warmOnce(ctx context.Context, im *asm.Image) error {
	p.mu.Lock()
	ip := p.images[im]
	if ip == nil {
		ip = &imagePool{im: im, free: make(chan *machine.Machine, p.size)}
		p.images[im] = ip
	}
	if ip.warmed {
		p.mu.Unlock()
		return nil
	}
	ip.warmed = true
	p.mu.Unlock()
	return p.Warm(ctx, im)
}

// EnableProfiling arms per-predicate cycle profiling for the pool:
// every machine built afterwards carries its own trace.Profiler (no
// cross-machine locking on the hot path), and each query's attribution
// is merged into one pool-wide aggregate after the query completes.
// Call it before the first Query — machines built earlier run
// unprofiled. Returns the aggregate; idempotent.
func (p *Pool) EnableProfiling() *trace.Agg {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.agg == nil {
		p.agg = trace.NewAgg()
		p.cfg.HookFactory = func() trace.Hook { return trace.NewProfiler() }
	}
	return p.agg
}

// Profile returns the pool-wide aggregated profile, or nil when
// profiling was never enabled.
func (p *Pool) Profile() *trace.Agg {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.agg
}

// harvest merges a machine's per-query profile into the pool
// aggregate. It must run after the query's last slice and before the
// machine is released (the next query's Reset clears the profiler).
func (p *Pool) harvest(m *machine.Machine) {
	p.mu.Lock()
	agg := p.agg
	p.mu.Unlock()
	if agg == nil {
		return
	}
	if prof, ok := m.Hook().(*trace.Profiler); ok {
		agg.Add(prof)
	}
}

// Option configures one pool query.
type Option func(*opts)

type opts struct {
	out    io.Writer
	budget uint64
}

// WithWriter directs the query's write/1 and nl/0 output to w. By
// default pooled queries discard output.
func WithWriter(w io.Writer) Option {
	return func(o *opts) { o.out = w }
}

// WithBudget bounds the query to n simulated instructions; exceeding
// it fails the query with machine.ErrStepBudget. The default is the
// pool configuration's MaxSteps (or the machine default when unset).
func WithBudget(n uint64) Option {
	return func(o *opts) { o.budget = n }
}

// Query runs a compiled query image to its first solution on a pooled
// machine: acquire (or build) a warm machine, reset its counters,
// re-boot it at the image's query entry, run under ctx, read the
// bindings back, release the machine. The returned Solution carries
// the same per-query counters a dedicated machine.Run would have
// produced — pooling changes who runs the query, not what it costs.
func (p *Pool) Query(ctx context.Context, im *asm.Image, options ...Option) (*core.Solution, error) {
	s, err := p.Begin(ctx, im, options...)
	if err != nil {
		return nil, err
	}
	defer s.Close()
	if s.Next(ctx) {
		return s.Solution(), nil
	}
	if s.Err() != nil {
		return nil, s.Err()
	}
	if s.Suspended() {
		// One-shot semantics: exhausting the budget is a hard error,
		// not a resumable suspension (hold a Session for that).
		return nil, fmt.Errorf("engine: %w: query exceeded %d steps",
			machine.ErrStepBudget, s.budget)
	}
	return s.Solution(), nil // the failed outcome, with its Result
}

// Warm builds the image's full complement of machines and brings each
// to the post-warm-run state, so later queries start from warm
// simulated caches (the paper's warm-run timing protocol). It is
// optional: Query builds machines on demand.
//
// Only the first machine actually executes the warm query; the rest
// are stamped from its snapshot (machine.Capture/Restore), which
// skips the simulation entirely and leaves every pool member in the
// byte-identical warm state a real run would have produced. Profiled
// or traced pools keep the per-machine real runs: their hooks observe
// warm-run events and their aggregates count every machine's cycles,
// which a stamp would silently skip.
func (p *Pool) Warm(ctx context.Context, im *asm.Image) error {
	entry, ok := im.Entry(compiler.QueryPI)
	if !ok {
		return fmt.Errorf("engine: image has no query entry point")
	}
	stamp := p.cfg.Hook == nil && p.cfg.HookFactory == nil
	var proto *snapshot.State
	// Hold all machines at once so every pool member gets one warm
	// state, instead of re-warming the same machine repeatedly.
	machines := make([]*machine.Machine, 0, p.size)
	var ip *imagePool
	defer func() {
		for _, m := range machines {
			// Warm runs are real simulated work; their cycles join the
			// pool profile like any query's.
			p.harvest(m)
			p.release(ip, m)
		}
	}()
	for i := 0; i < p.size; i++ {
		m, mip, err := p.acquire(ctx, im)
		if err != nil {
			return err
		}
		ip = mip
		machines = append(machines, m)
		m.Reset()
		m.SetOut(nil)
		if proto != nil {
			if err := m.Restore(proto); err == nil {
				continue
			}
			// A refused stamp (config drift, unexpected image state)
			// falls back to a real warm run below.
		}
		m.Begin(entry)
		if _, err := m.RunFor(ctx, 0); err != nil {
			return err
		}
		if stamp && proto == nil {
			if s, err := m.Capture(); err == nil {
				proto = s
			}
		}
	}
	return nil
}

// release returns a machine to the image pool — unless the query left
// it faulted. A fault can strike mid-instruction, leaving zone
// registers, shadow state and the trail mid-update; such a machine
// must not be handed to a later query on the strength of the next
// Reset alone. The discarded machine is replaced with a freshly built
// one immediately: a waiter may already be blocked on free with built
// at the cap, and decrementing built alone would strand it. Only if
// the replacement cannot be built (the config stopped being viable)
// does the slot close, mirroring acquire's build-error accounting.
func (p *Pool) release(ip *imagePool, m *machine.Machine) {
	if m.Err() == nil {
		ip.free <- m
		return
	}
	// The discarded machine's tenant delta dies with it; its
	// replacement starts at the boot frontier with no tenant.
	p.mu.Lock()
	delete(p.dyn, m)
	p.mu.Unlock()
	fresh, err := machine.New(ip.im, p.cfg)
	if err != nil {
		p.mu.Lock()
		ip.built--
		p.mu.Unlock()
		return
	}
	fresh.WarmFusion()
	ip.free <- fresh
}

// acquire returns a machine for im: a free pooled one if available, a
// newly built one while under the cap, else it blocks until a machine
// is released or ctx is cancelled.
func (p *Pool) acquire(ctx context.Context, im *asm.Image) (*machine.Machine, *imagePool, error) {
	p.mu.Lock()
	ip := p.images[im]
	if ip == nil {
		ip = &imagePool{im: im, free: make(chan *machine.Machine, p.size)}
		p.images[im] = ip
	}
	select {
	case m := <-ip.free:
		p.mu.Unlock()
		return m, ip, nil
	default:
	}
	if ip.built < p.size {
		ip.built++
		p.mu.Unlock()
		m, err := machine.New(im, p.cfg)
		if err != nil {
			p.mu.Lock()
			ip.built--
			p.mu.Unlock()
			return nil, nil, err
		}
		// Fused handlers are installed at build time, off every query
		// path: all pool members share the verified image, so the
		// install work is per machine, not per query.
		m.WarmFusion()
		return m, ip, nil
	}
	p.mu.Unlock()
	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}
	select {
	case m := <-ip.free:
		return m, ip, nil
	case <-done:
		cause := ctx.Err()
		sentinel := machine.ErrCancelled
		if errors.Is(cause, context.DeadlineExceeded) {
			sentinel = machine.ErrDeadline
		}
		return nil, nil, fmt.Errorf("engine: %w: waiting for a pooled machine: %w",
			sentinel, cause)
	}
}
