package engine_test

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/asm"
	"repro/internal/bench"
	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/machine"
)

const nrevSrc = `
app([], L, L).
app([H|T], L, [H|R]) :- app(T, L, R).
nrev([], []).
nrev([H|T], R) :- nrev(T, RT), app(RT, [H], R).
`

// zebraSrc is the five-houses puzzle, the suite's "real-size" deep
// search (also used by internal/core's tests; test fixtures are not
// importable across packages).
const zebraSrc = `
member(X, [X|_]).
member(X, [_|T]) :- member(X, T).
next_to(A, B, L) :- right_of(A, B, L).
next_to(A, B, L) :- right_of(B, A, L).
right_of(R, L, [L, R | _]).
right_of(R, L, [_ | T]) :- right_of(R, L, T).
first(X, [X | _]).
middle(X, [_, _, X, _, _]).
zebra(Owner) :-
    Houses = [_, _, _, _, _],
    member(house(red, english, _, _, _), Houses),
    right_of(house(green, _, _, _, _), house(ivory, _, _, _, _), Houses),
    first(house(_, norwegian, _, _, _), Houses),
    middle(house(_, _, milk, _, _), Houses),
    member(house(_, spanish, _, _, dog), Houses),
    member(house(green, _, coffee, _, _), Houses),
    member(house(_, ukrainian, tea, _, _), Houses),
    member(house(_, _, _, oldgold, snails), Houses),
    member(house(yellow, _, _, kools, _), Houses),
    next_to(house(_, _, _, chesterfield, _), house(_, _, _, _, fox), Houses),
    next_to(house(_, _, _, kools, _), house(_, _, _, _, horse), Houses),
    member(house(_, _, orangejuice, luckystrike, _), Houses),
    member(house(_, japanese, _, parliament, _), Houses),
    next_to(house(blue, _, _, _, _), house(_, norwegian, _, _, _), Houses),
    member(house(_, _, water, _, _), Houses),
    member(house(_, Owner, _, _, zebra), Houses).
`

// compileImage compiles src+query into a pool-servable image.
func compileImage(t *testing.T, src, query string) *asm.Image {
	t.Helper()
	im, err := core.MustLoad(src).CompileQuery(query)
	if err != nil {
		t.Fatal(err)
	}
	return im
}

// TestPoolParity is the tentpole's byte-identical guarantee at the
// pool level: a single query served by a pooled machine reports
// exactly the simulated cycle counts and cache statistics of a
// dedicated machine.Run — cold (first query on a fresh machine) and
// warm (second query on the same machine).
func TestPoolParity(t *testing.T) {
	im := compileImage(t, nrevSrc, "nrev([1,2,3,4,5,6,7,8,9,10], R).")
	entry, ok := im.Entry(compiler.QueryPI)
	if !ok {
		t.Fatal("no entry")
	}

	m, err := machine.New(im, machine.Config{})
	if err != nil {
		t.Fatal(err)
	}
	cold, err := m.Run(entry)
	if err != nil {
		t.Fatal(err)
	}
	m.ResetStats()
	warm, err := m.Run(entry)
	if err != nil {
		t.Fatal(err)
	}

	pool := engine.New(engine.WithPoolSize(1)) // one machine: 2nd query reuses it
	for i, want := range []machine.Result{cold, warm} {
		sol, err := pool.Query(context.Background(), im)
		if err != nil {
			t.Fatal(err)
		}
		got := sol.Result
		if got.Stats != want.Stats {
			t.Fatalf("query %d: stats differ:\npool   %+v\ndirect %+v", i, got.Stats, want.Stats)
		}
		if got.DCache != want.DCache || got.CCache != want.CCache {
			t.Fatalf("query %d: cache stats differ:\npool   %+v %+v\ndirect %+v %+v",
				i, got.DCache, got.CCache, want.DCache, want.CCache)
		}
		if sol.Vars["R"].String() != "[10,9,8,7,6,5,4,3,2,1]" {
			t.Fatalf("query %d: R = %v", i, sol.Vars["R"])
		}
	}
}

// TestPoolRace hammers one pool from 8 goroutines with a mix of
// nrev, queens and zebra queries; every answer must match the
// single-threaded result for its program. Run under -race this is the
// safety check for image sharing across concurrent machines.
func TestPoolRace(t *testing.T) {
	queens, ok := bench.ByName("queens")
	if !ok {
		t.Fatal("no queens program in the suite")
	}
	type job struct {
		im   *asm.Image
		want string // expected Solution.String()
	}
	var jobs []job
	for _, pq := range []struct{ src, query string }{
		{nrevSrc, "nrev([1,2,3,4,5,6,7,8,9,10], R)."},
		{queens.Source, "queens(6, Qs)."},
		{zebraSrc, "zebra(Owner)."},
	} {
		prog := core.MustLoad(pq.src)
		sol, err := prog.Query(pq.query)
		if err != nil {
			t.Fatal(err)
		}
		if !sol.Success {
			t.Fatalf("%q failed single-threaded", pq.query)
		}
		im, err := prog.CompileQuery(pq.query)
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, job{im: im, want: sol.String()})
	}

	pool := engine.New(engine.WithPoolSize(4)) // 8 goroutines on 4 machines/image
	const goroutines, rounds = 8, 5
	errs := make(chan error, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				j := jobs[(g+r)%len(jobs)]
				sol, err := pool.Query(context.Background(), j.im)
				if err != nil {
					errs <- fmt.Errorf("goroutine %d round %d: %w", g, r, err)
					return
				}
				if got := sol.String(); got != j.want {
					errs <- fmt.Errorf("goroutine %d round %d: %s, want %s", g, r, got, j.want)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestPoolWriterIsolation: concurrent queries with per-query writers
// must not interleave output across machines.
func TestPoolWriterIsolation(t *testing.T) {
	im := compileImage(t, nrevSrc, "nrev([1,2,3], R), write(R), nl.")
	pool := engine.New(engine.WithPoolSize(2))
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var out strings.Builder
			sol, err := pool.Query(context.Background(), im, engine.WithWriter(&out))
			if err != nil {
				errs <- err
				return
			}
			if !sol.Success || out.String() != "[3,2,1]\n" {
				errs <- fmt.Errorf("success=%v out=%q", sol.Success, out.String())
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestPoolWarm: Warm pre-builds the machines, and a warmed pool's
// first query already reports warm-cache hit ratios.
func TestPoolWarm(t *testing.T) {
	im := compileImage(t, nrevSrc, "nrev([1,2,3,4,5,6,7,8,9,10], R).")
	pool := engine.New(engine.WithPoolSize(1))
	if err := pool.Warm(context.Background(), im); err != nil {
		t.Fatal(err)
	}
	sol, err := pool.Query(context.Background(), im)
	if err != nil {
		t.Fatal(err)
	}

	// Reference warm run on a dedicated machine.
	entry, _ := im.Entry(compiler.QueryPI)
	m, err := machine.New(im, machine.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(entry); err != nil {
		t.Fatal(err)
	}
	m.ResetStats()
	warm, err := m.Run(entry)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Result.DCache != warm.DCache || sol.Result.CCache != warm.CCache {
		t.Fatalf("warmed pool cache stats differ from warm run:\npool %+v %+v\nwarm %+v %+v",
			sol.Result.DCache, sol.Result.CCache, warm.DCache, warm.CCache)
	}
}

// TestPoolBudget: a pooled query that exceeds its budget fails with
// ErrStepBudget and leaves the pool healthy for the next query.
func TestPoolBudget(t *testing.T) {
	spin := compileImage(t, "spin :- spin.\n", "spin.")
	good := compileImage(t, nrevSrc, "nrev([1,2], R).")
	pool := engine.New(engine.WithPoolSize(1))
	_, err := pool.Query(context.Background(), spin, engine.WithBudget(10_000))
	if !errors.Is(err, machine.ErrStepBudget) {
		t.Fatalf("spin query: %v, want ErrStepBudget", err)
	}
	sol, err := pool.Query(context.Background(), good)
	if err != nil || !sol.Success {
		t.Fatalf("pool unhealthy after budget fault: %v %v", sol, err)
	}
}
