package engine_test

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/machine"
)

const memberSrc = `
member(X, [X|_]).
member(X, [_|T]) :- member(X, T).
`

// TestSessionEnumeration: a pool session enumerates every solution in
// clause order through Next/Redo, reports exhaustion, and returns its
// machine to the pool on Close.
func TestSessionEnumeration(t *testing.T) {
	im := compileImage(t, memberSrc, "member(X, [1,2,3]).")
	pool := engine.New(engine.WithPoolSize(1))
	s, err := pool.Begin(context.Background(), im)
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for s.Next(context.Background()) {
		got = append(got, s.Solution().String())
	}
	if s.Err() != nil || s.Suspended() {
		t.Fatalf("err=%v suspended=%v", s.Err(), s.Suspended())
	}
	if want := "X = 1; X = 2; X = 3"; strings.Join(got, "; ") != want {
		t.Fatalf("solutions %q, want %q", strings.Join(got, "; "), want)
	}
	if fin := s.Solution(); fin == nil || fin.Success {
		t.Fatalf("final outcome %+v, want failure", fin)
	}
	if st := pool.Stats(); st.InUse != 1 {
		t.Fatalf("open session: in_use = %d, want 1", st.InUse)
	}
	s.Close()
	s.Close() // idempotent
	if st := pool.Stats(); st.InUse != 0 || st.Built != 1 {
		t.Fatalf("after close: %+v, want 0 in use of 1 built", pool.Stats())
	}
	if s.Result().Stats.Cycles == 0 {
		t.Fatal("Close lost the final counters")
	}
	if s.Next(context.Background()) || !errors.Is(s.Err(), engine.ErrSessionClosed) {
		t.Fatalf("Next after Close: err=%v, want ErrSessionClosed", s.Err())
	}
}

// TestSessionBudgetResume: a tiny per-Next budget suspends the search
// instead of erroring; repeated Next calls resume it to the very same
// solutions an unbounded session yields.
func TestSessionBudgetResume(t *testing.T) {
	im := compileImage(t, nrevSrc+memberSrc,
		"nrev([1,2,3,4,5,6,7,8], R), member(X, [a,b]).")
	pool := engine.New(engine.WithPoolSize(1))
	s, err := pool.Begin(context.Background(), im, engine.WithBudget(50))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var got []string
	suspensions := 0
	for {
		if s.Next(context.Background()) {
			got = append(got, s.Solution().String())
			continue
		}
		if s.Suspended() {
			suspensions++
			if suspensions > 1_000_000 {
				t.Fatal("never completed")
			}
			continue
		}
		break
	}
	if s.Err() != nil {
		t.Fatal(s.Err())
	}
	if suspensions == 0 {
		t.Fatal("budget of 50 never suspended; test is vacuous")
	}
	want := "R = [8,7,6,5,4,3,2,1], X = a; R = [8,7,6,5,4,3,2,1], X = b"
	if sj := strings.Join(got, "; "); sj != want {
		t.Fatalf("resumed solutions:\n got %s\nwant %s", sj, want)
	}
}

// TestSessionDeadlineResumable: a per-Next context deadline surfaces
// as machine.ErrDeadline but leaves the session resumable — the next
// Next call (with a live context) continues the search.
func TestSessionDeadlineResumable(t *testing.T) {
	im := compileImage(t, memberSrc+"slow(X) :- member(X, [1,2,3]), spin(200000).\nspin(0).\nspin(N) :- N > 0, M is N - 1, spin(M).\n",
		"slow(X).")
	pool := engine.New(engine.WithPoolSize(1))
	s, err := pool.Begin(context.Background(), im)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	expired, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	time.Sleep(time.Millisecond)
	if s.Next(expired) {
		t.Fatal("Next succeeded under an expired context")
	}
	if !errors.Is(s.Err(), machine.ErrDeadline) {
		t.Fatalf("err = %v, want ErrDeadline", s.Err())
	}
	if !s.Next(context.Background()) {
		t.Fatalf("session did not resume after deadline: err=%v", s.Err())
	}
	if got := s.Solution().String(); got != "X = 1" {
		t.Fatalf("first solution after resume = %q", got)
	}
}

// TestSessionSetBudget: the per-slice budget can be replaced between
// Next calls (each network request carries its own).
func TestSessionSetBudget(t *testing.T) {
	im := compileImage(t, nrevSrc, "nrev([1,2,3,4,5,6,7,8,9,10], R).")
	pool := engine.New(engine.WithPoolSize(1))
	s, err := pool.Begin(context.Background(), im, engine.WithBudget(10))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.Next(context.Background()) || !s.Suspended() {
		t.Fatal("budget 10 should suspend nrev/10")
	}
	s.SetBudget(10_000_000)
	if !s.Next(context.Background()) {
		t.Fatalf("raised budget did not finish: err=%v suspended=%v", s.Err(), s.Suspended())
	}
	if got := s.Solution().Vars["R"].String(); got != "[10,9,8,7,6,5,4,3,2,1]" {
		t.Fatalf("R = %s", got)
	}
}

// TestPoolOptions: New's functional options mirror core — pool size,
// fusion toggle, profiling, and auto-warm.
func TestPoolOptions(t *testing.T) {
	im := compileImage(t, nrevSrc, "nrev([1,2,3,4,5], R).")

	pool := engine.New(
		engine.WithConfig(machine.Config{}),
		engine.WithPoolSize(2),
		engine.WithFusion(false),
		engine.WithProfiling(true),
		engine.WithWarm(true),
	)
	if pool.Size() != 2 {
		t.Fatalf("Size = %d, want 2", pool.Size())
	}
	sol, err := pool.Query(context.Background(), im)
	if err != nil || !sol.Success {
		t.Fatalf("query: %v %v", err, sol)
	}
	if sol.Result.Fusion.Runs != 0 {
		t.Fatalf("WithFusion(false) still installed %d fused runs", sol.Result.Fusion.Runs)
	}
	// WithWarm built and warmed the full complement before the query.
	if st := pool.Stats(); st.Built != 2 || st.InUse != 0 {
		t.Fatalf("after warm+query: %+v, want 2 built, 0 in use", st)
	}
	// Warm cache check: the first client-visible query must already
	// report warm hit ratios (matches an explicit second run).
	if agg := pool.Profile(); agg == nil || agg.Total() == 0 {
		t.Fatalf("WithProfiling(true) collected nothing")
	}
}

// TestNewPoolShim: the deprecated constructor behaves exactly like
// New(WithConfig, WithPoolSize) for one release.
func TestNewPoolShim(t *testing.T) {
	im := compileImage(t, memberSrc, "member(X, [a]).")
	pool := engine.NewPool(machine.Config{}, 3)
	if pool.Size() != 3 {
		t.Fatalf("Size = %d, want 3", pool.Size())
	}
	sol, err := pool.Query(context.Background(), im)
	if err != nil || sol.String() != "X = a" {
		t.Fatalf("shim query: %v %v", err, sol)
	}
}
