package engine

import (
	"context"
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/machine"
)

// TestAcquireBlocksAndCancels exercises the wait path: with the only
// machine checked out, acquire blocks, honours cancellation with
// ErrCancelled, and succeeds again once the machine is released.
func TestAcquireBlocksAndCancels(t *testing.T) {
	im, err := core.MustLoad("p.\n").CompileQuery("p.")
	if err != nil {
		t.Fatal(err)
	}
	p := New(WithPoolSize(1))

	m, ip, err := p.acquire(context.Background(), im)
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := p.acquire(ctx, im); !errors.Is(err, machine.ErrCancelled) {
		t.Fatalf("acquire on exhausted pool: %v, want ErrCancelled", err)
	}

	ip.free <- m
	m2, _, err := p.acquire(context.Background(), im)
	if err != nil {
		t.Fatal(err)
	}
	if m2 != m {
		t.Fatal("released machine was not reused")
	}
	ip.free <- m2
}
