package engine_test

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/asm"
	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/trace"
)

// TestPoolTraceRace is TestPoolRace with observability armed: 8
// goroutines hammer a profiled pool while, interleaved, each also
// drives budget-suspended core.Solutions sessions (RunFor slices that
// suspend and resume, plus Redo between solutions) carrying their own
// profiler and ring sink. Under -race this is the safety check for the
// tracing layer; the assertions are the conservation law under
// concurrency — the pool aggregate equals the exact sum of every
// pooled query's cycle counter, and each session's profiler equals its
// own machine's counter.
func TestPoolTraceRace(t *testing.T) {
	queens, ok := bench.ByName("queens")
	if !ok {
		t.Fatal("no queens program in the suite")
	}
	type job struct {
		prog  *core.Program
		query string
		want  string // expected Solution.String()
	}
	var jobs []job
	for _, pq := range []struct{ src, query string }{
		{nrevSrc, "nrev([1,2,3,4,5,6,7,8,9,10], R)."},
		{queens.Source, "queens(6, Qs)."},
		{zebraSrc, "zebra(Owner)."},
	} {
		prog := core.MustLoad(pq.src)
		sol, err := prog.Query(pq.query)
		if err != nil {
			t.Fatal(err)
		}
		if !sol.Success {
			t.Fatalf("%q failed single-threaded", pq.query)
		}
		jobs = append(jobs, job{prog: prog, query: pq.query, want: sol.String()})
	}
	pool := engine.New(engine.WithPoolSize(4))
	agg := pool.EnableProfiling()

	// Compile the pool images once, up front (compilation shares the
	// per-program symbol table and is not part of what this test
	// stresses).
	type poolJob struct {
		im   *asm.Image
		want string
	}
	var poolJobs []poolJob
	for _, j := range jobs {
		im, err := j.prog.CompileQuery(j.query)
		if err != nil {
			t.Fatal(err)
		}
		poolJobs = append(poolJobs, poolJob{im: im, want: j.want})
	}

	var pooledCycles atomic.Uint64 // sum of every pooled query's cycles
	const goroutines, rounds = 8, 5
	errs := make(chan error, goroutines*2)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				j := poolJobs[(g+r)%len(poolJobs)]
				sol, err := pool.Query(context.Background(), j.im)
				if err != nil {
					errs <- fmt.Errorf("goroutine %d round %d: %w", g, r, err)
					return
				}
				if got := sol.String(); got != j.want {
					errs <- fmt.Errorf("goroutine %d round %d: %s, want %s", g, r, got, j.want)
					return
				}
				pooledCycles.Add(sol.Result.Stats.Cycles)

				// Between pooled queries, run a private session that
				// suspends on a small instruction budget (forcing the
				// suspend/resume path) and enumerates two solutions
				// (forcing the Redo path), with its own profiler and
				// ring buffer attached.
				sj := jobs[(g+r+1)%len(jobs)]
				pr := trace.NewProfiler()
				ring := trace.NewRing(64)
				it, err := sj.prog.Solutions(sj.query,
					core.WithBudget(300),
					core.WithMaxSolutions(2),
					core.WithProfile(pr),
					core.WithTrace(ring))
				if err != nil {
					errs <- fmt.Errorf("goroutine %d round %d: session: %w", g, r, err)
					return
				}
				suspensions, sols := 0, 0
				for {
					if it.Next() {
						sols++
						continue
					}
					if it.Suspended() {
						suspensions++
						continue // resume the slice
					}
					break
				}
				if it.Err() != nil {
					errs <- fmt.Errorf("goroutine %d round %d: session: %w", g, r, it.Err())
					return
				}
				if sols == 0 || suspensions == 0 {
					errs <- fmt.Errorf("goroutine %d round %d: session saw %d solutions, %d suspensions; the budget is not exercising suspend/resume",
						g, r, sols, suspensions)
					return
				}
				cyc := it.Solution().Result.Stats.Cycles
				if got := pr.Total(); got != cyc {
					errs <- fmt.Errorf("goroutine %d round %d: session profiler total %d != machine cycles %d",
						g, r, got, cyc)
					return
				}
				if ring.Seen() == 0 {
					errs <- fmt.Errorf("goroutine %d round %d: session ring saw no events", g, r)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if t.Failed() {
		return
	}
	// Conservation at the pool level: every simulated cycle any pooled
	// query burned is attributed exactly once in the aggregate.
	if got, want := agg.Total(), pooledCycles.Load(); got != want {
		t.Fatalf("pool aggregate total %d != sum of pooled query cycles %d", got, want)
	}
	if rows := agg.Rows(); len(rows) == 0 {
		t.Fatal("pool aggregate has no rows")
	}
}
