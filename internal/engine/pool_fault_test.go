package engine_test

import (
	"context"
	"errors"
	"sync"
	"testing"

	"repro/internal/engine"
	"repro/internal/machine"
)

// TestPoolDiscardsFaultedMachines drives a pool with a mix of queries
// that fault (heap overflow with collection disabled) and queries that
// succeed, concurrently and for many rounds. A fault strikes
// mid-instruction and leaves the machine's zone registers in an
// undefined state, so the pool must discard faulted machines instead
// of re-pooling them; the test asserts that later queries still
// succeed (fresh machines replace discarded ones, the pool never
// wedges) and that faulting queries keep reporting ErrHeapOverflow
// rather than some corruption of a reused machine. Run under -race it
// also pins the discard path's locking.
func TestPoolDiscardsFaultedMachines(t *testing.T) {
	growSrc := "grow(0, []).\ngrow(N, [N|T]) :- N > 0, M is N - 1, grow(M, T).\n"
	bad := compileImage(t, growSrc, "grow(100000, _).")
	good := compileImage(t, growSrc, "grow(20, L).")

	p := engine.New(engine.WithConfig(machine.Config{
		GlobalBase: 0x10000, GlobalSize: 0x1000,
		GCOnOverflow: machine.Off,
	}), engine.WithPoolSize(2))

	const workers = 4
	const rounds = 8
	var wg sync.WaitGroup
	errs := make(chan error, workers*rounds*2)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				_, err := p.Query(context.Background(), bad)
				if !errors.Is(err, machine.ErrHeapOverflow) {
					errs <- err
				}
				sol, err := p.Query(context.Background(), good)
				if err != nil || !sol.Success {
					errs <- err
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("pool query after faults: %v", err)
	}
}

// TestPoolRecoversHeapWithGC is the same pressure with collection left
// on: the garbage-making query completes inside the tiny heap because
// the pool machines collect on overflow, and the machines stay pooled
// (no fault, no discard).
func TestPoolRecoversHeapWithGC(t *testing.T) {
	churnSrc := "churn(0).\nchurn(N) :- mk(N, _), M is N - 1, churn(M).\nmk(N, [N, N, N, N]).\n"
	im := compileImage(t, churnSrc, "churn(2000).")
	p := engine.New(engine.WithConfig(machine.Config{
		GlobalBase: 0x10000, GlobalSize: 0x800,
	}), engine.WithPoolSize(2))
	for i := 0; i < 4; i++ {
		sol, err := p.Query(context.Background(), im)
		if err != nil || !sol.Success {
			t.Fatalf("round %d: %v success=%v", i, err, sol != nil && sol.Success)
		}
		if sol.Result.GC.Collections == 0 {
			t.Fatalf("round %d: expected collections in a tiny heap", i)
		}
	}
}
