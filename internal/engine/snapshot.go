package engine

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/asm"
	"repro/internal/compiler"
	"repro/internal/dyndb"
	"repro/internal/machine"
	"repro/internal/snapshot"
	"repro/internal/term"
)

// Session park and resume: a suspended enumeration serialized to a
// snapshot blob, releasable to disk or another process, and resumed
// onto any pooled machine later — the BinProlog first-class-engine
// idea taken across the process boundary, and the mechanism behind
// kcmd sessions surviving a daemon restart.
//
// The blob embeds, besides the machine state, a small session block
// (enumeration phase, solutions delivered, step budget) and — for
// tenant sessions — the dynamic database version the installed delta
// was materialized from. Resume re-creates the code environment the
// same way Begin/BeginDyn would (same image, same delta install, same
// goal block at the same frontier) and then proves it got the same
// bytes via the blob's image hash before any state is restored.

// Suspend/resume sentinel errors.
var (
	// ErrNotSuspendable reports a session whose enumeration has
	// already ended (exhausted, failed or faulted) — there is nothing
	// left to park.
	ErrNotSuspendable = errors.New("engine: session not suspendable")
	// ErrStaleDelta reports a resume against a tenant database that
	// has been mutated, reloaded or rolled back since the snapshot was
	// taken: the parked blob references a delta that no longer exists,
	// and restoring it would run stale code.
	ErrStaleDelta = errors.New("engine: tenant database changed since snapshot")
	// ErrNoSession reports a resume from a blob that carries bare
	// machine state with no session block.
	ErrNoSession = errors.New("engine: snapshot carries no session")
)

// Session-state values carried in the blob's session block. 0 is
// reserved for "no session" (a bare machine capture).
const (
	blobSessRun  = 1 // next step: RunFor (fresh or budget-suspended)
	blobSessRedo = 2 // a solution is out; Redo before the next RunFor
)

// Suspend serializes the session — machine state, enumeration phase,
// delivered count, budget, and the tenant delta version if any — into
// a snapshot blob and closes the session, releasing its machine back
// to the pool. The enumeration must still be live: mid-stream after a
// solution, budget-suspended, or not yet started. The blob can be
// resumed in this process or another with Resume/ResumeDyn.
func (s *Session) Suspend() ([]byte, error) {
	if s.closed {
		return nil, ErrSessionClosed
	}
	if s.state == sessDone || (s.err != nil && !s.ctxErr) {
		return nil, fmt.Errorf("%w: enumeration already ended", ErrNotSuspendable)
	}
	st, err := s.m.Capture()
	if err != nil {
		return nil, err
	}
	switch s.state {
	case sessRun:
		st.SessState = blobSessRun
	case sessRedo:
		st.SessState = blobSessRedo
	}
	st.SessDelivered = uint64(s.delivered)
	st.SessBudget = s.budget
	// Tenant sessions record which delta version the machine's code
	// was materialized from, offset by one so zero stays unambiguously
	// "static image, no delta".
	s.p.mu.Lock()
	ds := s.p.dyn[s.m]
	s.p.mu.Unlock()
	if ds != nil && ds.db != nil {
		st.DeltaVersion = ds.view.Version + 1
		st.DeltaTop = ds.view.Top
	}
	blob := snapshot.Encode(st)
	s.Close()
	return blob, nil
}

// sessionFromBlob builds the resumed Session once the machine has been
// restored.
func sessionFromBlob(p *Pool, ip *imagePool, m *machine.Machine, im *asm.Image, st *snapshot.State, o *opts) *Session {
	budget := st.SessBudget
	if o.budget > 0 {
		budget = o.budget
	}
	if budget == 0 {
		budget = 1_000_000_000
	}
	state := sessRun
	if st.SessState == blobSessRedo {
		state = sessRedo
	}
	return &Session{
		p: p, ip: ip, m: m, im: im, budget: budget,
		delivered: int(st.SessDelivered),
		state:     state,
	}
}

// Resume restores a suspended static-image session from a blob onto a
// pooled machine of im. The image must be the same compile the session
// was suspended from (the blob's content hash proves it); blobs parked
// from tenant sessions are rejected — use ResumeDyn. Options may
// override the parked step budget and output writer.
func (p *Pool) Resume(ctx context.Context, im *asm.Image, blob []byte, options ...Option) (*Session, error) {
	var o opts
	for _, opt := range options {
		opt(&o)
	}
	st, err := snapshot.Decode(blob)
	if err != nil {
		return nil, err
	}
	if st.SessState == 0 {
		return nil, ErrNoSession
	}
	if st.DeltaVersion != 0 {
		return nil, fmt.Errorf("engine: snapshot carries a tenant delta; resume it with ResumeDyn")
	}
	m, ip, err := p.acquire(ctx, im)
	if err != nil {
		return nil, err
	}
	m.Reset()
	m.SetOut(o.out)
	if err := m.Restore(st); err != nil {
		p.release(ip, m)
		return nil, err
	}
	return sessionFromBlob(p, ip, m, im, st, &o), nil
}

// ResumeDyn restores a suspended tenant session: the goal is
// recompiled and the tenant's delta re-installed exactly as BeginDyn
// would, the blob's image hash proves the reconstruction reproduced
// the code the session ran against, and the machine state is restored
// on top. The database must still be at the version the blob was
// parked from — any assert, retract, reload or rollback since makes
// the parked delta stale and the resume fails with ErrStaleDelta.
func (p *Pool) ResumeDyn(ctx context.Context, db *dyndb.DB, goal term.Term, blob []byte, options ...Option) (*Session, error) {
	var o opts
	for _, opt := range options {
		opt(&o)
	}
	st, err := snapshot.Decode(blob)
	if err != nil {
		return nil, err
	}
	if st.SessState == 0 {
		return nil, ErrNoSession
	}
	if st.DeltaVersion == 0 {
		return nil, fmt.Errorf("engine: snapshot carries no tenant delta; resume it with Resume")
	}
	if got := db.Version(); st.DeltaVersion-1 != got {
		return nil, fmt.Errorf("%w: snapshot at version %d, database now %d",
			ErrStaleDelta, st.DeltaVersion-1, got)
	}
	c := compiler.New(db.Syms())
	mod, err := c.CompileGoal(goal)
	if err != nil {
		return nil, err
	}
	m, ip, err := p.acquireDyn(ctx, db)
	if err != nil {
		return nil, err
	}
	ds := p.dynFor(m)
	m.Reset()
	if err := p.install(m, ds, db); err != nil {
		p.release(ip, m)
		return nil, err
	}
	if ds.view.Top != st.DeltaTop {
		// Same version but a different frontier can only mean the
		// database object is not the one the blob was parked from.
		p.release(ip, m)
		return nil, fmt.Errorf("%w: snapshot delta frontier %d, database view %d",
			ErrStaleDelta, st.DeltaTop, ds.view.Top)
	}
	qim, err := asm.LinkAt(mod, m.CodeTop(), ds.view.Entries)
	if err != nil {
		p.release(ip, m)
		return nil, err
	}
	if _, err := m.LoadDyn(qim.Code); err != nil {
		p.release(ip, m)
		return nil, err
	}
	m.SetOut(o.out)
	if err := m.Restore(st); err != nil {
		// The machine is consistent (delta installed, goal loaded) —
		// only the restore was refused; scrub the transient goal block
		// and return it to the pool.
		m.TruncateCode(ds.view.Top)
		p.release(ip, m)
		return nil, err
	}
	return sessionFromBlob(p, ip, m, qim, st, &o), nil
}
