package engine

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/asm"
	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/machine"
)

// Session is a first-class pooled query: a machine leased from the
// pool with a booted goal, enumerated one solution at a time and
// returned to the pool on Close. This is the BinProlog "first-class
// logic engine" shape — an engine is a server-side resource a client
// creates, runs, suspends and resumes — and it is what the kcmd
// network front-end parks in its session table between requests.
//
// The iteration protocol mirrors core.Solutions exactly:
//
//	s, err := pool.Begin(ctx, im, engine.WithBudget(100_000))
//	for s.Next(ctx) {
//	    use(s.Solution())
//	}
//	switch {
//	case s.Err() != nil:   // fault, cancellation or deadline
//	case s.Suspended():    // step budget ran out; Next resumes
//	default:               // enumeration exhausted
//	}
//	s.Close()
//
// Unlike core.Solutions, a context cancellation or deadline does NOT
// end the session: RunFor leaves the machine intact at a stride
// boundary, so the error is reported once through Err and the next
// Next call resumes the search — exactly what a per-request deadline
// over a long enumeration needs.
//
// A Session is not safe for concurrent use; callers multiplexing one
// session across goroutines (the kcmd session table) serialize access
// themselves.
type Session struct {
	p      *Pool
	ip     *imagePool
	m      *machine.Machine
	im     *asm.Image
	budget uint64

	cur       *core.Solution // last outcome (success or the final failure)
	err       error
	ctxErr    bool // err came from ctx: resumable, cleared on next Next
	suspended bool
	delivered int
	state     int
	closed    bool
	final     machine.Result // counters captured at Close
}

// Session states, mirroring core.Solutions.
const (
	sessRun  = iota // next step: RunFor (fresh goal or resumed slice)
	sessRedo        // a solution is out; Redo before the next RunFor
	sessDone        // exhausted, failed, or faulted
)

// ErrSessionClosed is returned through Session.Err by operations on a
// closed session.
var ErrSessionClosed = errors.New("engine: session closed")

// Begin leases a warm machine from the pool and boots the image's
// query on it without executing an instruction. The caller owns the
// returned session until Close, which releases the machine; the
// pool's acquire path provides admission control — Begin blocks when
// every machine is leased, until one is released or ctx ends.
func (p *Pool) Begin(ctx context.Context, im *asm.Image, options ...Option) (*Session, error) {
	var o opts
	for _, opt := range options {
		opt(&o)
	}
	entry, ok := im.Entry(compiler.QueryPI)
	if !ok {
		return nil, fmt.Errorf("engine: image has no query entry point")
	}
	budget := o.budget
	if budget == 0 {
		budget = p.cfg.MaxSteps
	}
	if budget == 0 {
		budget = 1_000_000_000
	}
	if p.autoWarm {
		if err := p.warmOnce(ctx, im); err != nil {
			return nil, err
		}
	}
	m, ip, err := p.acquire(ctx, im)
	if err != nil {
		return nil, err
	}
	m.Reset() // also clears any fault a previous query left behind
	m.SetOut(o.out)
	m.Begin(entry)
	return &Session{p: p, ip: ip, m: m, im: im, budget: budget}, nil
}

// SetBudget replaces the per-slice step budget for subsequent Next
// calls (0 keeps the current budget). The kcmd next-solution verb uses
// it to let every request carry its own budget.
func (s *Session) SetBudget(n uint64) {
	if n > 0 {
		s.budget = n
	}
}

// Next advances the enumeration by at most one budget slice. It
// returns true with a new solution available from Solution, and false
// when the search is exhausted, failed, suspended on its step budget,
// interrupted by ctx, or faulted; check Suspended and Err to tell the
// cases apart. After a budget suspension or a ctx interruption,
// calling Next again resumes the search where it stopped.
func (s *Session) Next(ctx context.Context) bool {
	s.suspended = false
	if s.closed {
		s.err = ErrSessionClosed
		return false
	}
	if s.err != nil {
		if !s.ctxErr {
			return false
		}
		// A cancellation or deadline stopped RunFor at a stride
		// boundary with the machine intact; a fresh Next resumes.
		s.err, s.ctxErr = nil, false
	}
	if s.state == sessDone {
		return false
	}
	if s.state == sessRedo {
		if err := s.m.Redo(); err != nil {
			s.err = err
			s.state = sessDone
			return false
		}
		s.state = sessRun
	}
	st, err := s.m.RunFor(ctx, s.budget)
	if err != nil {
		s.err = err
		if errors.Is(err, machine.ErrCancelled) || errors.Is(err, machine.ErrDeadline) {
			s.ctxErr = true // session stays resumable
		} else {
			s.state = sessDone
		}
		return false
	}
	if st == machine.Suspended {
		s.suspended = true // state stays sessRun: Next resumes
		return false
	}
	res := s.m.Result()
	if !res.Success {
		s.cur = &core.Solution{Success: false, Result: res}
		s.state = sessDone
		return false
	}
	s.cur = &core.Solution{
		Success: true,
		// Read back before any release: the bindings live in this
		// machine's simulated memory (the term builder's slabs keep
		// earlier solutions valid after Close).
		Vars:   s.m.QueryBindings(s.im.QueryVars),
		Result: res,
	}
	s.delivered++
	s.state = sessRedo
	return true
}

// Solution returns the outcome of the last Next call that produced
// one: the current solution after Next reported true, or the final
// failed outcome (Success=false, counters populated) once the search
// is exhausted.
func (s *Session) Solution() *core.Solution { return s.cur }

// Suspended reports whether the last Next call stopped on its step
// budget rather than an outcome; the search resumes on the next Next.
func (s *Session) Suspended() bool { return s.suspended }

// Err returns the error the last Next call hit, if any. An error
// wrapping machine.ErrCancelled or machine.ErrDeadline is resumable
// (the next Next continues the search); any other error ends the
// session's enumeration.
func (s *Session) Err() error { return s.err }

// Delivered is how many solutions the session has produced.
func (s *Session) Delivered() int { return s.delivered }

// Result snapshots the machine counters accumulated since Begin —
// cumulative across the whole enumeration. After Close it returns the
// counters captured at close time.
func (s *Session) Result() machine.Result {
	if s.closed {
		return s.final
	}
	return s.m.Result()
}

// Close ends the session: the profile is harvested into the pool
// aggregate and the machine is released for the next query. The final
// counters stay readable through Result. Close is idempotent.
func (s *Session) Close() {
	if s.closed {
		return
	}
	s.closed = true
	s.final = s.m.Result()
	// Harvest before release on every path, as Pool.Query always did:
	// even a faulted enumeration's partial cycles are attributed.
	s.p.harvest(s.m)
	s.p.release(s.ip, s.m)
	s.m = nil
}
