package engine

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/asm"
	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/dyndb"
	"repro/internal/machine"
	"repro/internal/term"
)

// Tenant-keyed leases: copy-on-write image sharing over the pool.
//
// Every tenant's dynamic database (internal/dyndb) layers a private
// delta — rebuilt predicate blocks plus retargeted call sites — above
// one immutable base image. The pool keys its machines by that shared
// base image, so N tenants cost one image and one machine complement,
// not N of each: BeginDyn leases any pooled machine and makes it the
// requesting tenant's by rolling back whatever delta the previous
// occupant left (restoring the boot frontier and patched words) and
// replaying the tenant's own delta above the base.
//
// All delta writes are diff-aware (machine.LoadDyn/PatchDyn skip
// words already holding their value), so the lease protocol is cheap
// in the steady state: acquire prefers a machine that last served the
// same tenant, where an unchanged delta re-install touches nothing
// and the simulated caches stay warm — and even a tenant switch only
// rewrites the words where the two deltas actually differ from the
// base.

// dynState tracks what a pooled machine currently carries: the boot
// mark to roll back to, and the database (with the view version) whose
// delta is installed. It is only ever touched by the machine's current
// lessee; the map holding it is guarded by Pool.mu.
type dynState struct {
	mark machine.CodeMark
	db   *dyndb.DB
	view dyndb.View
}

// dynFor returns (creating on first lease) the machine's dynState.
// The machine must be leased by the caller, and must sit at its boot
// frontier on first call — both guaranteed by acquireDyn, which
// creates states for machines it builds and for fault replacements
// (built by release at the boot frontier).
func (p *Pool) dynFor(m *machine.Machine) *dynState {
	p.mu.Lock()
	st := p.dyn[m]
	p.mu.Unlock()
	if st != nil {
		return st
	}
	st = &dynState{mark: m.Snapshot()}
	p.mu.Lock()
	p.dyn[m] = st
	p.mu.Unlock()
	return st
}

// install brings a leased machine to the database's current version:
// same tenant keeps its delta (dropping only the previous goal block,
// then topping up any blocks asserted since), any other occupant is
// rolled back to the boot image first. On error the machine is
// scrubbed back to its boot state so it can serve the next lease.
func (p *Pool) install(m *machine.Machine, st *dynState, db *dyndb.DB) error {
	if st.db == db {
		if m.CodeTop() > st.view.Top {
			m.TruncateCode(st.view.Top)
		}
		if st.view.Version == db.Version() {
			return nil
		}
		old := st.view.Entries
		view, err := db.Materialize(m)
		if err != nil {
			p.scrub(m, st)
			return err
		}
		for pi := range old {
			if _, live := view.Entries[pi]; !live {
				m.UnregisterPred(pi)
			}
		}
		st.view = view
		return nil
	}
	m.Rollback(st.mark)
	view, err := db.Materialize(m)
	if err != nil {
		p.scrub(m, st)
		return err
	}
	st.db, st.view = db, view
	return nil
}

// scrub returns a machine whose install failed midway to the boot
// image, forgetting the tenant association.
func (p *Pool) scrub(m *machine.Machine, st *dynState) {
	m.Rollback(st.mark)
	st.db = nil
	st.view = dyndb.View{}
}

// BeginDyn leases a pooled machine for one tenant's query: the goal is
// compiled and linked against the tenant's current entry table, the
// tenant's delta is installed over the shared base image, and the goal
// block is loaded transiently above it. The returned session behaves
// exactly like Begin's — enumerate, suspend on budget, resume, Close
// to release — and Close leaves the delta in place, so the next lease
// of the same tenant on that machine reuses it for free.
func (p *Pool) BeginDyn(ctx context.Context, db *dyndb.DB, goal term.Term, options ...Option) (*Session, error) {
	var o opts
	for _, opt := range options {
		opt(&o)
	}
	budget := o.budget
	if budget == 0 {
		budget = p.cfg.MaxSteps
	}
	if budget == 0 {
		budget = 1_000_000_000
	}
	c := compiler.New(db.Syms())
	mod, err := c.CompileGoal(goal)
	if err != nil {
		return nil, err
	}
	m, ip, err := p.acquireDyn(ctx, db)
	if err != nil {
		return nil, err
	}
	st := p.dynFor(m)
	m.Reset()
	if err := p.install(m, st, db); err != nil {
		p.release(ip, m)
		return nil, err
	}
	// Link the goal against the view's consistent entry table (not the
	// live database, which may be mutating concurrently) and load it as
	// the transient block above the delta.
	qim, err := asm.LinkAt(mod, m.CodeTop(), st.view.Entries)
	if err != nil {
		p.release(ip, m) // machine is consistent at the delta frontier
		return nil, err
	}
	if _, err := m.LoadDyn(qim.Code); err != nil {
		p.release(ip, m)
		return nil, err
	}
	entry, ok := qim.Entries[compiler.QueryPI]
	if !ok {
		p.release(ip, m)
		return nil, fmt.Errorf("engine: goal block has no query entry point")
	}
	m.SetOut(o.out)
	m.Begin(entry)
	return &Session{p: p, ip: ip, m: m, im: qim, budget: budget}, nil
}

// QueryDyn runs a tenant goal to its first solution, the BeginDyn
// analogue of Query.
func (p *Pool) QueryDyn(ctx context.Context, db *dyndb.DB, goal term.Term, options ...Option) (*core.Solution, error) {
	s, err := p.BeginDyn(ctx, db, goal, options...)
	if err != nil {
		return nil, err
	}
	defer s.Close()
	if s.Next(ctx) {
		return s.Solution(), nil
	}
	if s.Err() != nil {
		return nil, s.Err()
	}
	if s.Suspended() {
		return nil, fmt.Errorf("engine: %w: query exceeded %d steps",
			machine.ErrStepBudget, s.budget)
	}
	return s.Solution(), nil
}

// acquireDyn is acquire with tenant affinity: among the free machines
// of the database's base image it prefers one that last served this
// same database (its delta is already installed and its simulated
// caches are warm for this tenant's code). With no affine machine
// free it behaves like acquire — any free machine, else build under
// the cap, else block.
func (p *Pool) acquireDyn(ctx context.Context, db *dyndb.DB) (*machine.Machine, *imagePool, error) {
	im := db.Image()
	p.mu.Lock()
	ip := p.images[im]
	if ip == nil {
		ip = &imagePool{im: im, free: make(chan *machine.Machine, p.size)}
		p.images[im] = ip
	}
	// Drain the free list, pick the best candidate, park the rest
	// back. The list is at most p.size long and this runs under p.mu,
	// so no other acquirer interleaves.
	var parked []*machine.Machine
	var pick *machine.Machine
drain:
	for {
		select {
		case m := <-ip.free:
			if pick == nil && p.dyn[m] != nil && p.dyn[m].db == db {
				pick = m
			} else {
				parked = append(parked, m)
			}
		default:
			break drain
		}
	}
	if pick == nil && len(parked) > 0 {
		pick, parked = parked[0], parked[1:]
	}
	for _, m := range parked {
		ip.free <- m
	}
	if pick != nil {
		p.mu.Unlock()
		return pick, ip, nil
	}
	if ip.built < p.size {
		ip.built++
		p.mu.Unlock()
		m, err := machine.New(im, p.cfg)
		if err != nil {
			p.mu.Lock()
			ip.built--
			p.mu.Unlock()
			return nil, nil, err
		}
		m.WarmFusion()
		return m, ip, nil
	}
	p.mu.Unlock()
	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}
	select {
	case m := <-ip.free:
		return m, ip, nil
	case <-done:
		cause := ctx.Err()
		sentinel := machine.ErrCancelled
		if errors.Is(cause, context.DeadlineExceeded) {
			sentinel = machine.ErrDeadline
		}
		return nil, nil, fmt.Errorf("engine: %w: waiting for a pooled machine: %w",
			sentinel, cause)
	}
}
