package engine_test

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/dyndb"
	"repro/internal/engine"
	"repro/internal/reader"
	"repro/internal/term"
)

const tenantSrc = `
:- dynamic(color/1).
likes(X) :- color(X).
app([], Ys, Ys).
app([X|Xs], Ys, [X|Zs]) :- app(Xs, Ys, Zs).
`

// seedDB builds the shared base image and the seed database every
// tenant clones.
func seedDB(t testing.TB, src string) *dyndb.DB {
	t.Helper()
	p := core.MustLoad(src)
	im, ds, err := p.BaseImage()
	if err != nil {
		t.Fatalf("BaseImage: %v", err)
	}
	db, err := dyndb.New(im, ds.Order)
	if err != nil {
		t.Fatalf("dyndb.New: %v", err)
	}
	for _, pi := range ds.Order {
		if cls := ds.Clauses[pi]; len(cls) > 0 {
			if _, err := db.Reload(pi, cls); err != nil {
				t.Fatalf("seed %v: %v", pi, err)
			}
		}
	}
	return db
}

func parse(t testing.TB, src string) term.Term {
	t.Helper()
	tm, err := reader.ParseTerm(src + " .")
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return tm
}

// collect enumerates every solution of goal for the tenant and
// renders X bindings.
func collect(t testing.TB, p *engine.Pool, db *dyndb.DB, goal string) []string {
	t.Helper()
	s, err := p.BeginDyn(context.Background(), db, parse(t, goal))
	if err != nil {
		t.Fatalf("BeginDyn %q: %v", goal, err)
	}
	defer s.Close()
	var out []string
	for s.Next(context.Background()) {
		sol := s.Solution()
		if v, ok := sol.Binding("X"); ok {
			out = append(out, v.String())
		} else {
			out = append(out, "yes")
		}
	}
	if s.Err() != nil {
		t.Fatalf("enumerate %q: %v", goal, s.Err())
	}
	return out
}

func TestTenantIsolation(t *testing.T) {
	seed := seedDB(t, tenantSrc)
	pool := engine.New(engine.WithPoolSize(2))

	a := seed.Clone()
	b := seed.Clone()
	if _, err := a.Assertz(parse(t, "color(red)")); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Assertz(parse(t, "color(blue)")); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Assertz(parse(t, "color(green)")); err != nil {
		t.Fatal(err)
	}

	// Interleave leases so both tenants visit both machines: any
	// leaked clause would show up in the other tenant's enumeration.
	for i := 0; i < 4; i++ {
		got := collect(t, pool, a, "likes(X)")
		if len(got) != 1 || got[0] != "red" {
			t.Fatalf("tenant a sees %v, want [red]", got)
		}
		got = collect(t, pool, b, "likes(X)")
		if len(got) != 2 || got[0] != "blue" || got[1] != "green" {
			t.Fatalf("tenant b sees %v, want [blue green]", got)
		}
		// The static predicates of the shared base stay callable for
		// both.
		if got := collect(t, pool, a, "app([1], [2], X)"); len(got) != 1 || got[0] != "[1,2]" {
			t.Fatalf("tenant a static query: %v", got)
		}
	}
	st := pool.Stats()
	if st.InUse != 0 {
		t.Fatalf("InUse=%d after all sessions closed, want 0", st.InUse)
	}
}

func TestTenantMutationVisibleAcrossLeases(t *testing.T) {
	seed := seedDB(t, tenantSrc)
	pool := engine.New(engine.WithPoolSize(1))
	db := seed.Clone()

	if got := collect(t, pool, db, "likes(X)"); len(got) != 0 {
		t.Fatalf("empty chain sees %v", got)
	}
	if _, err := db.Assertz(parse(t, "color(cyan)")); err != nil {
		t.Fatal(err)
	}
	if got := collect(t, pool, db, "likes(X)"); len(got) != 1 || got[0] != "cyan" {
		t.Fatalf("after assert: %v, want [cyan]", got)
	}
	if _, _, err := db.Retract(parse(t, "color(cyan)")); err != nil {
		t.Fatal(err)
	}
	if got := collect(t, pool, db, "likes(X)"); len(got) != 0 {
		t.Fatalf("after retract: %v, want []", got)
	}
}

// TestTenantSuspendResume parks a tenant session mid-enumeration and
// resumes it against the same database: the continuation is
// byte-identical. Then the satellite-3 regression: ANY database
// change between park and resume — an assert, and a Reload that rolls
// the predicate back to the exact clause set the blob was parked from
// — must fail typed with ErrStaleDelta, because the delta image the
// blob's code addresses point into has been rebuilt.
func TestTenantSuspendResume(t *testing.T) {
	seed := seedDB(t, tenantSrc)
	pool := engine.New(engine.WithPoolSize(2))
	db := seed.Clone()
	colorPI := term.Indicator{Name: "color", Arity: 1}
	for _, c := range []string{"color(red)", "color(green)", "color(blue)"} {
		if _, err := db.Assertz(parse(t, c)); err != nil {
			t.Fatal(err)
		}
	}
	parked := db.Clauses(colorPI) // the clause set the blob will reference

	// Reference: uninterrupted enumeration.
	if got := collect(t, pool, db, "likes(X)"); strings.Join(got, " ") != "red green blue" {
		t.Fatalf("reference enumeration: %v", got)
	}

	// Park after one solution, resume, finish.
	goal := parse(t, "likes(X)")
	s, err := pool.BeginDyn(context.Background(), db, goal)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Next(context.Background()) {
		t.Fatalf("first solution: err=%v", s.Err())
	}
	if v, _ := s.Solution().Binding("X"); v.String() != "red" {
		t.Fatalf("first solution %v, want red", v)
	}
	blob, err := s.Suspend()
	if err != nil {
		t.Fatal(err)
	}
	r, err := pool.ResumeDyn(context.Background(), db, goal, blob)
	if err != nil {
		t.Fatalf("ResumeDyn: %v", err)
	}
	var rest []string
	for r.Next(context.Background()) {
		v, _ := r.Solution().Binding("X")
		rest = append(rest, v.String())
	}
	if r.Err() != nil || strings.Join(rest, " ") != "green blue" {
		t.Fatalf("resumed enumeration: %v (err=%v)", rest, r.Err())
	}
	r.Close()

	// Park again, then mutate: the blob is now stale.
	s2, err := pool.BeginDyn(context.Background(), db, goal)
	if err != nil {
		t.Fatal(err)
	}
	if !s2.Next(context.Background()) {
		t.Fatal(s2.Err())
	}
	stale, err := s2.Suspend()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Assertz(parse(t, "color(cyan)")); err != nil {
		t.Fatal(err)
	}
	if _, err := pool.ResumeDyn(context.Background(), db, goal, stale); !errors.Is(err, engine.ErrStaleDelta) {
		t.Fatalf("resume after assert: %v, want ErrStaleDelta", err)
	}
	// Roll the predicate back to the exact clause set the blob was
	// parked from. The content matches, but the delta was rebuilt —
	// the version proves it and the resume must still be refused.
	if _, err := db.Reload(colorPI, parked); err != nil {
		t.Fatal(err)
	}
	if _, err := pool.ResumeDyn(context.Background(), db, goal, stale); !errors.Is(err, engine.ErrStaleDelta) {
		t.Fatalf("resume after rollback-by-reload: %v, want ErrStaleDelta", err)
	}
	// A static resume of a tenant blob is directed to ResumeDyn.
	if _, err := pool.Resume(context.Background(), db.Image(), stale); err == nil ||
		errors.Is(err, engine.ErrNoSession) {
		t.Fatalf("tenant blob via Resume: %v, want delta-direction error", err)
	}
	// The database itself must still be healthy after every refusal.
	if got := collect(t, pool, db, "likes(X)"); strings.Join(got, " ") != "red green blue" {
		t.Fatalf("post-refusal enumeration: %v", got)
	}
}

// TestTenantRace runs, concurrently and under -race when the suite
// is: per-tenant mutators interleaving assert/retract with their own
// queries, other tenants querying throughout, legacy pooled queries
// on a separate static image, and a budget-suspended session being
// resumed — then checks no clause leaked across tenants and the pool
// fully drains.
func TestTenantRace(t *testing.T) {
	seed := seedDB(t, tenantSrc)
	pool := engine.New(engine.WithPoolSize(4))

	const tenants = 4
	const rounds = 8
	dbs := make([]*dyndb.DB, tenants)
	for i := range dbs {
		dbs[i] = seed.Clone()
	}

	// A legacy static image served by the same pool object (its own
	// image pool): the old path must stay undisturbed.
	statProg := core.MustLoad("app([], Ys, Ys).\napp([X|Xs], Ys, [X|Zs]) :- app(Xs, Ys, Zs).\n")
	statIm, err := statProg.CompileQuery("app([1,2], [3], R).")
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, tenants+2)
	for i := 0; i < tenants; i++ {
		wg.Add(1)
		go func(id int, db *dyndb.DB) {
			defer wg.Done()
			mine := fmt.Sprintf("t%d", id)
			for r := 0; r < rounds; r++ {
				c := parse(t, fmt.Sprintf("color(%s_%d)", mine, r))
				if _, err := db.Assertz(c); err != nil {
					errs <- fmt.Errorf("tenant %d assert: %w", id, err)
					return
				}
				sols := collect(t, pool, db, "likes(X)")
				if len(sols) != r+1 {
					errs <- fmt.Errorf("tenant %d round %d: %d solutions, want %d (%v)",
						id, r, len(sols), r+1, sols)
					return
				}
				for _, s := range sols {
					if len(s) < len(mine) || s[:len(mine)+1] != mine+"_" {
						errs <- fmt.Errorf("tenant %d saw foreign clause %q", id, s)
						return
					}
				}
			}
			// Retract half and recheck.
			for r := 0; r < rounds; r += 2 {
				c := parse(t, fmt.Sprintf("color(%s_%d)", mine, r))
				if ok, _, err := db.Retract(c); err != nil || !ok {
					errs <- fmt.Errorf("tenant %d retract %d: ok=%v err=%v", id, r, ok, err)
					return
				}
			}
			if sols := collect(t, pool, db, "likes(X)"); len(sols) != rounds/2 {
				errs <- fmt.Errorf("tenant %d after retracts: %d solutions, want %d",
					id, len(sols), rounds/2)
			}
		}(i, dbs[i])
	}

	// Legacy static queries throughout.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for r := 0; r < rounds*2; r++ {
			sol, err := pool.Query(context.Background(), statIm)
			if err != nil {
				errs <- fmt.Errorf("static query: %w", err)
				return
			}
			if v, _ := sol.Binding("R"); v == nil || v.String() != "[1,2,3]" {
				errs <- fmt.Errorf("static query got %v", sol)
				return
			}
		}
	}()

	// A budget-suspended tenant session resumed slice by slice while
	// everything else churns.
	wg.Add(1)
	go func() {
		defer wg.Done()
		db := seed.Clone()
		if _, err := db.Assertz(parse(t, "color(slowpoke)")); err != nil {
			errs <- err
			return
		}
		s, err := pool.BeginDyn(context.Background(), db,
			parse(t, "app(L, R, [a,b,c,d,e]), likes(X)"), engine.WithBudget(40))
		if err != nil {
			errs <- fmt.Errorf("suspend session: %w", err)
			return
		}
		defer s.Close()
		got := 0
		for i := 0; i < 10_000; i++ {
			if s.Next(context.Background()) {
				got++
				continue
			}
			if s.Suspended() {
				continue // resume next Next: the Redo path under churn
			}
			break
		}
		if err := s.Err(); err != nil {
			errs <- fmt.Errorf("suspended session: %w", err)
			return
		}
		if got != 6 { // six splits of the 5-element list, one color each
			errs <- fmt.Errorf("suspended session got %d solutions, want 6", got)
		}
	}()

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if st := pool.Stats(); st.InUse != 0 {
		t.Fatalf("InUse=%d after drain, want 0", st.InUse)
	}
}
