package engine_test

import (
	"context"
	"errors"
	"testing"

	"repro/internal/asm"
	"repro/internal/cache"
	"repro/internal/compiler"
	"repro/internal/engine"
	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/mmu"
)

func mustEntry(t *testing.T, im *asm.Image) uint32 {
	t.Helper()
	entry, ok := im.Entry(compiler.QueryPI)
	if !ok {
		t.Fatal("image has no query entry")
	}
	return entry
}

// counterSet is the comparable subset of machine.Result — every
// simulated counter, minus the maps and slices (bindings are compared
// through the rendered text).
type counterSet struct {
	success        bool
	stats          machine.Stats
	dcache, ccache cache.Stats
	mem            mem.Stats
	dmmu           mmu.Stats
	gc             machine.GCStats
	fusion         machine.FusionStats
}

func countersOf(r machine.Result) counterSet {
	return counterSet{r.Success, r.Stats, r.DCache, r.CCache, r.Mem, r.DataMMU, r.GC, r.Fusion}
}

// solutionTrace records everything observable about one delivered
// solution: the rendered bindings and the full simulated counter set
// at the moment of delivery.
type solutionTrace struct {
	text   string
	result counterSet
}

func snapTrace(s *engine.Session) solutionTrace {
	sol := s.Solution()
	return solutionTrace{text: sol.String(), result: countersOf(sol.Result)}
}

// enumerate drives a session to exhaustion, tracing each solution.
func enumerate(t *testing.T, s *engine.Session) []solutionTrace {
	t.Helper()
	var out []solutionTrace
	for s.Next(context.Background()) {
		out = append(out, snapTrace(s))
	}
	if s.Err() != nil || s.Suspended() {
		t.Fatalf("enumerate: err=%v suspended=%v", s.Err(), s.Suspended())
	}
	return out
}

// TestWarmStampParity: Warm boots the first machine with a real run,
// snapshots it, and stamps the rest of the complement from the blob.
// Holding every machine at once and running the query on each must
// yield byte-identical counters — a stamped machine is
// indistinguishable from the one that did the real warm run.
func TestWarmStampParity(t *testing.T) {
	im := compileImage(t, nrevSrc, "nrev([1,2,3,4,5,6,7,8,9,10], R).")
	pool := engine.New(engine.WithPoolSize(3))
	if err := pool.Warm(context.Background(), im); err != nil {
		t.Fatal(err)
	}
	if st := pool.Stats(); st.Built != 3 {
		t.Fatalf("Warm built %d machines, want 3", st.Built)
	}

	// Three concurrent sessions pin all three machines (one real-warmed,
	// two stamped); enumerate each to exhaustion.
	var sessions []*engine.Session
	for i := 0; i < 3; i++ {
		s, err := pool.Begin(context.Background(), im)
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		sessions = append(sessions, s)
	}
	var ref []solutionTrace
	for i, s := range sessions {
		got := enumerate(t, s)
		if i == 0 {
			ref = got
			if len(ref) != 1 || ref[0].text != "R = [10,9,8,7,6,5,4,3,2,1]" {
				t.Fatalf("reference enumeration: %+v", ref)
			}
			continue
		}
		if len(got) != len(ref) {
			t.Fatalf("machine %d: %d solutions, want %d", i, len(got), len(ref))
		}
		for j := range got {
			if got[j].text != ref[j].text {
				t.Fatalf("machine %d sol %d: %q, want %q", i, j, got[j].text, ref[j].text)
			}
			if got[j].result != ref[j].result {
				t.Fatalf("machine %d sol %d counters differ:\n got %+v\nwant %+v",
					i, j, got[j].result, ref[j].result)
			}
		}
	}
}

// TestSuspendResumeByteIdentical is the tentpole's correctness bar at
// the engine level: park a session mid-enumeration, resume the blob on
// a DIFFERENT pool (fresh machines — the in-process stand-in for
// another process), and the Redo-driven continuation must deliver the
// same solutions with the same cycle counts and cache statistics as a
// session that was never suspended.
func TestSuspendResumeByteIdentical(t *testing.T) {
	im := compileImage(t, nrevSrc+memberSrc,
		"nrev([1,2,3,4,5,6,7,8], R), member(X, [a,b,c]).")

	// Reference: uninterrupted enumeration.
	refPool := engine.New(engine.WithPoolSize(1))
	rs, err := refPool.Begin(context.Background(), im)
	if err != nil {
		t.Fatal(err)
	}
	ref := enumerate(t, rs)
	rs.Close()
	refFinal := rs.Result()
	if len(ref) != 3 {
		t.Fatalf("reference delivered %d solutions, want 3", len(ref))
	}

	for park := 0; park <= len(ref); park++ {
		// Deliver `park` solutions, then suspend.
		poolA := engine.New(engine.WithPoolSize(1))
		s, err := poolA.Begin(context.Background(), im)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < park; i++ {
			if !s.Next(context.Background()) {
				t.Fatalf("park=%d: solution %d missing", park, i)
			}
			if got := snapTrace(s); got != ref[i] {
				t.Fatalf("park=%d sol %d diverged before suspend:\n got %+v\nwant %+v",
					park, i, got, ref[i])
			}
		}
		blob, err := s.Suspend()
		if err != nil {
			t.Fatalf("park=%d: Suspend: %v", park, err)
		}
		if st := poolA.Stats(); st.InUse != 0 {
			t.Fatalf("park=%d: Suspend leaked the machine (in_use=%d)", park, st.InUse)
		}

		// Resume on a different pool: fresh machines, same image.
		poolB := engine.New(engine.WithPoolSize(1))
		r, err := poolB.Resume(context.Background(), im, blob)
		if err != nil {
			t.Fatalf("park=%d: Resume: %v", park, err)
		}
		if r.Delivered() != park {
			t.Fatalf("park=%d: Delivered()=%d after resume", park, r.Delivered())
		}
		rest := enumerate(t, r)
		if len(rest) != len(ref)-park {
			t.Fatalf("park=%d: resumed session delivered %d more, want %d",
				park, len(rest), len(ref)-park)
		}
		for j, got := range rest {
			if got != ref[park+j] {
				t.Fatalf("park=%d sol %d after resume differs:\n got %+v\nwant %+v",
					park, park+j, got, ref[park+j])
			}
		}
		r.Close()
		if fin := r.Result(); fin.Stats != refFinal.Stats ||
			fin.DCache != refFinal.DCache || fin.CCache != refFinal.CCache ||
			fin.GC != refFinal.GC {
			t.Fatalf("park=%d: final counters differ:\n got %+v\nwant %+v",
				park, fin, refFinal)
		}
	}
}

// TestSuspendBudgetSuspended: a session parked while budget-suspended
// (mid-slice, no solution out) resumes to the same answers.
func TestSuspendBudgetSuspended(t *testing.T) {
	im := compileImage(t, nrevSrc, "nrev([1,2,3,4,5,6,7,8,9,10], R).")
	pool := engine.New(engine.WithPoolSize(1))
	s, err := pool.Begin(context.Background(), im, engine.WithBudget(50))
	if err != nil {
		t.Fatal(err)
	}
	if s.Next(context.Background()) || !s.Suspended() {
		t.Fatal("budget 50 should suspend nrev/10 mid-run")
	}
	blob, err := s.Suspend()
	if err != nil {
		t.Fatal(err)
	}
	r, err := pool.Resume(context.Background(), im, blob, engine.WithBudget(10_000_000))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if !r.Next(context.Background()) {
		t.Fatalf("resumed session: err=%v suspended=%v", r.Err(), r.Suspended())
	}
	if got := r.Solution().Vars["R"].String(); got != "[10,9,8,7,6,5,4,3,2,1]" {
		t.Fatalf("R = %s", got)
	}
}

// TestSuspendResumeErrors pins the typed failure modes of the park
// and resume paths.
func TestSuspendResumeErrors(t *testing.T) {
	im := compileImage(t, memberSrc, "member(X, [1]).")
	other := compileImage(t, memberSrc, "member(X, [1,2]).")
	pool := engine.New(engine.WithPoolSize(1))

	// Exhausted session: nothing left to park.
	s, err := pool.Begin(context.Background(), im)
	if err != nil {
		t.Fatal(err)
	}
	for s.Next(context.Background()) {
	}
	if _, err := s.Suspend(); !errors.Is(err, engine.ErrNotSuspendable) {
		t.Fatalf("suspend exhausted: %v, want ErrNotSuspendable", err)
	}
	s.Close()
	if _, err := s.Suspend(); !errors.Is(err, engine.ErrSessionClosed) {
		t.Fatalf("suspend closed: %v, want ErrSessionClosed", err)
	}

	// A live blob to abuse below.
	s2, err := pool.Begin(context.Background(), im)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := s2.Suspend()
	if err != nil {
		t.Fatal(err)
	}

	// Resuming onto a different compile is refused by the image hash.
	if _, err := pool.Resume(context.Background(), other, blob); !errors.Is(err, machine.ErrImageMismatch) {
		t.Fatalf("cross-image resume: %v, want ErrImageMismatch", err)
	}
	// A static blob cannot be resumed through the tenant path.
	if _, err := pool.ResumeDyn(context.Background(), nil, nil, blob); err == nil ||
		errors.Is(err, engine.ErrNoSession) {
		t.Fatalf("static blob via ResumeDyn: %v, want delta-direction error", err)
	}

	// A bare machine capture (no session block) is not resumable.
	m, err := machine.New(im, machine.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(mustEntry(t, im)); err != nil {
		t.Fatal(err)
	}
	bare, err := m.CaptureBlob()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pool.Resume(context.Background(), im, bare); !errors.Is(err, engine.ErrNoSession) {
		t.Fatalf("bare capture resume: %v, want ErrNoSession", err)
	}

	// Garbage bytes surface the snapshot package's typed errors.
	if _, err := pool.Resume(context.Background(), im, blob[:10]); err == nil {
		t.Fatal("truncated blob accepted")
	}

	// The pool must still be healthy after every refusal.
	sol, err := pool.Query(context.Background(), im)
	if err != nil || sol.String() != "X = 1" {
		t.Fatalf("pool unhealthy after refusals: %v %v", sol, err)
	}
}
