// Package spur models the static code size of SPUR, Berkeley's
// general-purpose tagged RISC, compiling the same Prolog programs to
// sequences of 32-bit RISC instructions (Borriello et al., ASPLOS II,
// the source of the paper's Table 1 SPUR columns).
//
// Only static size is compared in the paper, so only static size is
// modelled: each WAM-level operation expands to the macro-expanded
// RISC sequence length (tag extraction, compare-and-branch chains,
// dereference loops unrolled once, explicit stack arithmetic), and
// every instruction is four bytes.
package spur

import "repro/internal/kcmisa"

// BytesPerInstr is the SPUR instruction width.
const BytesPerInstr = 4

// expansion is the number of SPUR instructions macro-generated for
// one WAM operation. The numbers follow the shape of the ASPLOS-II
// study: trivial register moves stay single instructions, unification
// and indexing explode into tag-dispatch code, and choice-point
// save/restore becomes long load/store sequences.
func expansion(in kcmisa.Instr) int {
	switch in.Op {
	case kcmisa.Noop:
		return 0
	case kcmisa.GetVarX, kcmisa.PutValX:
		return 1
	case kcmisa.MoveXY, kcmisa.MoveYX, kcmisa.PutValY:
		return 2
	case kcmisa.PutVarX:
		return 6
	case kcmisa.PutVarY:
		return 6
	case kcmisa.PutUnsafeY:
		return 18
	case kcmisa.PutConst, kcmisa.PutNil, kcmisa.LoadConst:
		return 3
	case kcmisa.PutList:
		return 5
	case kcmisa.PutStruct:
		return 8
	case kcmisa.GetValX, kcmisa.UnifyRegs:
		return 34 // general unification call sequence
	case kcmisa.GetConst, kcmisa.GetNil:
		return 20 // deref loop + tag dispatch + bind/trail path
	case kcmisa.GetList:
		return 22
	case kcmisa.GetStruct:
		return 30
	case kcmisa.UnifyVarX, kcmisa.UnifyVarY:
		return 6
	case kcmisa.UnifyValX, kcmisa.UnifyValY:
		return 20
	case kcmisa.UnifyLocX, kcmisa.UnifyLocY:
		return 24
	case kcmisa.UnifyConst, kcmisa.UnifyNil:
		return 16
	case kcmisa.UnifyList:
		return 16
	case kcmisa.UnifyVoid:
		return 6
	case kcmisa.Call:
		return 6
	case kcmisa.Execute:
		return 5
	case kcmisa.Proceed:
		return 4
	case kcmisa.Allocate:
		return 14
	case kcmisa.Deallocate:
		return 10
	case kcmisa.TryMeElse, kcmisa.Try:
		return 40 // full choice-point save
	case kcmisa.RetryMeElse, kcmisa.Retry:
		return 34
	case kcmisa.TrustMe, kcmisa.Trust:
		return 28
	case kcmisa.Neck:
		return 0 // KCM-specific; SPUR code has no neck
	case kcmisa.SwitchOnTerm:
		return 16
	case kcmisa.SwitchOnConst, kcmisa.SwitchOnStruct:
		return 18 + 2*len(in.Sw) // hash dispatch + inline table
	case kcmisa.Cut, kcmisa.CutY:
		return 9
	case kcmisa.SaveB0:
		return 2
	case kcmisa.Fail:
		return 2
	case kcmisa.Halt, kcmisa.HaltFail:
		return 1
	case kcmisa.Add, kcmisa.Sub:
		return 12 // tag checks + untag + op + retag + overflow branch
	case kcmisa.Mul, kcmisa.Div, kcmisa.Mod:
		return 16
	case kcmisa.CmpLt, kcmisa.CmpLe, kcmisa.CmpGt, kcmisa.CmpGe,
		kcmisa.CmpEq, kcmisa.CmpNe:
		return 12
	case kcmisa.TestVar, kcmisa.TestNonvar, kcmisa.TestAtom,
		kcmisa.TestInteger, kcmisa.TestAtomic:
		return 7
	case kcmisa.IdentEq, kcmisa.IdentNe:
		return 26
	case kcmisa.Builtin:
		return 6
	default:
		return 4
	}
}

// Size is the SPUR static code size of one predicate.
type Size struct {
	Instrs int
	Bytes  int
}

// PredSize expands a compiled predicate to its SPUR size.
func PredSize(code []kcmisa.Instr) Size {
	var s Size
	for _, in := range code {
		s.Instrs += expansion(in)
	}
	s.Bytes = s.Instrs * BytesPerInstr
	return s
}
