package spur

import (
	"testing"

	"repro/internal/compiler"
	"repro/internal/kcmisa"
	"repro/internal/reader"
	"repro/internal/term"
)

func TestBytesAreFourPerInstr(t *testing.T) {
	code := []kcmisa.Instr{{Op: kcmisa.GetList}, {Op: kcmisa.Proceed}}
	s := PredSize(code)
	if s.Bytes != s.Instrs*BytesPerInstr {
		t.Fatalf("bytes %d != 4 x %d", s.Bytes, s.Instrs)
	}
}

func TestExpansionOrdering(t *testing.T) {
	// Unification must expand far beyond register moves, and general
	// unification beyond first-level tag dispatch: the RISC-vs-CISC
	// structure of the ASPLOS study.
	move := expansion(kcmisa.Instr{Op: kcmisa.GetVarX})
	getc := expansion(kcmisa.Instr{Op: kcmisa.GetConst})
	genu := expansion(kcmisa.Instr{Op: kcmisa.GetValX})
	try := expansion(kcmisa.Instr{Op: kcmisa.TryMeElse})
	if !(move < getc && getc < genu) {
		t.Fatalf("ordering broken: move=%d getc=%d genu=%d", move, getc, genu)
	}
	if try < 20 {
		t.Fatalf("choice-point save too cheap: %d", try)
	}
	if expansion(kcmisa.Instr{Op: kcmisa.Neck}) != 0 {
		t.Fatal("SPUR code has no neck")
	}
}

func TestWholeProgramExpansion(t *testing.T) {
	clauses, err := reader.ParseAll(`
app([], L, L).
app([H|T], L, [H|R]) :- app(T, L, R).
`)
	if err != nil {
		t.Fatal(err)
	}
	m, err := compiler.New(nil).CompileProgram(clauses)
	if err != nil {
		t.Fatal(err)
	}
	code := m.Preds[term.Ind("app", 3)].Code
	s := PredSize(code)
	ratio := float64(s.Instrs) / float64(len(code))
	// Table 1 puts SPUR/KCM instruction ratios between ~6 and ~20.
	if ratio < 4 || ratio > 25 {
		t.Fatalf("SPUR/KCM instruction ratio %.1f out of range", ratio)
	}
}
