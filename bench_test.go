// Package repro's benchmark harness: one testing.B benchmark per
// table and figure of the paper's evaluation section. Each benchmark
// regenerates its artefact and reports the simulated quantities the
// paper tabulates (ms at the machine clocks, Klips, ratios) as custom
// benchmark metrics, so `go test -bench=. -benchmem` reprints the
// whole evaluation.
package repro

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/machine"
)

// BenchmarkTable1StaticSize regenerates Table 1: static code size of
// the PLM suite under the PLM, SPUR and KCM encodings.
func BenchmarkTable1StaticSize(b *testing.B) {
	var rows []bench.Table1Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = bench.Table1()
		if err != nil {
			b.Fatal(err)
		}
	}
	var kpI, kpB, skI, skB float64
	for _, r := range rows {
		kpI += r.KCMvsPLMInstr()
		kpB += r.KCMvsPLMBytes()
		skI += r.SPURvsKCMInstr()
		skB += r.SPURvsKCMBytes()
	}
	n := float64(len(rows))
	b.ReportMetric(kpI/n, "KCM/PLM-instr")
	b.ReportMetric(kpB/n, "KCM/PLM-bytes")
	b.ReportMetric(skI/n, "SPUR/KCM-instr")
	b.ReportMetric(skB/n, "SPUR/KCM-bytes")
	b.Log("\n" + bench.RenderTable1(rows))
}

// BenchmarkTable2VsPLM regenerates Table 2: the suite on KCM vs the
// PLM cost model (paper: average ratio 3.05, KCM 2-4x faster).
func BenchmarkTable2VsPLM(b *testing.B) {
	var rows []bench.TimeRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = bench.Table2()
		if err != nil {
			b.Fatal(err)
		}
	}
	var sum float64
	for _, r := range rows {
		sum += r.Ratio()
	}
	b.ReportMetric(sum/float64(len(rows)), "PLM/KCM-ratio")
	b.Log("\n" + bench.RenderTimeTable(rows, "PLM"))
}

// BenchmarkTable3VsQuintus regenerates Table 3: the I/O-stripped
// suite on KCM vs the QUINTUS/SUN3 model (paper: average 7.85x).
func BenchmarkTable3VsQuintus(b *testing.B) {
	var rows []bench.TimeRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = bench.Table3()
		if err != nil {
			b.Fatal(err)
		}
	}
	var sum float64
	for _, r := range rows {
		sum += r.Ratio()
	}
	b.ReportMetric(sum/float64(len(rows)), "Q/KCM-ratio")
	b.Log("\n" + bench.RenderTimeTable(rows, "QUINTUS"))
}

// BenchmarkTable4Peak regenerates Table 4: peak Klips on the concat
// step and the nrev inner loop (paper: 833 and 760).
func BenchmarkTable4Peak(b *testing.B) {
	var rows []bench.Table4Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = bench.Table4()
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.Machine == "KCM" {
			b.ReportMetric(r.ConKlips, "concat-Klips")
			b.ReportMetric(r.RevKlips, "nrev-Klips")
		}
	}
	b.Log("\n" + bench.RenderTable4(rows))
}

// BenchmarkCacheCollision regenerates the section 3.2.4 experiment:
// direct-mapped hit ratios with separated vs colliding stack bases vs
// the 8-section zone-split cache.
func BenchmarkCacheCollision(b *testing.B) {
	var rows []bench.CacheRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = bench.CacheStudy()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].HitRatio*100, "apart-hit%")
	b.ReportMetric(rows[1].HitRatio*100, "colliding-hit%")
	b.ReportMetric(rows[2].HitRatio*100, "split-hit%")
	b.Log("\n" + bench.RenderCacheStudy(rows))
}

// BenchmarkAblationShallow measures the shallow-backtracking design
// point: cycles and choice-point traffic vs the standard WAM policy.
func BenchmarkAblationShallow(b *testing.B) {
	var rows []bench.ShallowRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = bench.AblationShallow()
		if err != nil {
			b.Fatal(err)
		}
	}
	var speed, traffic float64
	for _, r := range rows {
		speed += r.Speedup()
		traffic += r.CPTrafficShare()
	}
	n := float64(len(rows))
	b.ReportMetric(speed/n, "eager/shallow-cycles")
	b.ReportMetric(traffic/n*100, "eager-CP-traffic%")
	b.Log("\n" + bench.RenderShallow(rows))
}

// BenchmarkAblationDeref measures the dereference hardware (1
// cycle/link vs a software loop), one of the per-unit evaluations the
// paper schedules in section 5.
func BenchmarkAblationDeref(b *testing.B) {
	benchUnit(b, "deref")
}

// BenchmarkAblationTrail measures the parallel trail-check
// comparators vs explicit comparison code.
func BenchmarkAblationTrail(b *testing.B) {
	benchUnit(b, "trail")
}

func benchUnit(b *testing.B, unit string) {
	var rows []bench.UnitRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = bench.AblationUnit(unit)
		if err != nil {
			b.Fatal(err)
		}
	}
	var sum float64
	for _, r := range rows {
		sum += r.Slowdown()
	}
	b.ReportMetric(sum/float64(len(rows)), "no-"+unit+"-slowdown")
	b.Log("\n" + bench.RenderUnit(rows, unit))
}

// BenchmarkSuitePrograms times each individual benchmark program on
// the simulator (wall-clock of the simulation itself, plus the
// simulated Klips as a metric).
func BenchmarkSuitePrograms(b *testing.B) {
	for _, p := range bench.Suite {
		p := p
		b.Run(p.Name, func(b *testing.B) {
			var r bench.RunResult
			for i := 0; i < b.N; i++ {
				var err error
				r, err = bench.RunKCMWarm(p, true, machine.Config{})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(r.Klips(), "simulated-Klips")
			b.ReportMetric(r.Millis(), "simulated-ms")
		})
	}
}

// BenchmarkGCOverhead measures the mark-compact collector: the same
// garbage-heavy workload with the collector off (big heap) and on
// (small heap), reporting the cycle overhead and the heap ceiling.
func BenchmarkGCOverhead(b *testing.B) {
	src := `
app([], L, L).
app([H|T], L, [H|R]) :- app(T, L, R).
nrev([], []).
nrev([H|T], R) :- nrev(T, RT), app(RT, [H], R).
mklist(0, []).
mklist(N, [N|T]) :- N > 0, M is N - 1, mklist(M, T).
`
	p := bench.Program{Name: "gcload", Source: src,
		PureQuery: "mklist(60, L), nrev(L, _), nrev(L, _), nrev(L, _)."}
	var off, on bench.RunResult
	for i := 0; i < b.N; i++ {
		var err error
		off, err = bench.RunKCM(p, true, machine.Config{})
		if err != nil {
			b.Fatal(err)
		}
		on, err = bench.RunKCM(p, true, machine.Config{GCThresholdWords: 2048})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(on.Stats.Cycles)/float64(off.Stats.Cycles), "gc-cycle-overhead")
	b.ReportMetric(float64(on.Result.GC.Collections), "collections")
	b.ReportMetric(float64(on.Result.GC.FreedWords), "freed-words")
}

// BenchmarkZebra runs the real-size search program end to end.
func BenchmarkZebra(b *testing.B) {
	p := bench.Program{Name: "zebra", Source: zebraSrc, PureQuery: "zebra(_Owner)."}
	var r bench.RunResult
	for i := 0; i < b.N; i++ {
		var err error
		r, err = bench.RunKCMWarm(p, true, machine.Config{})
		if err != nil {
			b.Fatal(err)
		}
		if !r.Success {
			b.Fatal("zebra failed")
		}
	}
	b.ReportMetric(r.Klips(), "simulated-Klips")
	b.ReportMetric(r.Millis(), "simulated-ms")
}

const zebraSrc = `
member(X, [X|_]).
member(X, [_|T]) :- member(X, T).
next_to(A, B, L) :- right_of(A, B, L).
next_to(A, B, L) :- right_of(B, A, L).
right_of(R, L, [L, R | _]).
right_of(R, L, [_ | T]) :- right_of(R, L, T).
first(X, [X | _]).
middle(X, [_, _, X, _, _]).
zebra(Owner) :-
    Houses = [_, _, _, _, _],
    member(house(red, english, _, _, _), Houses),
    right_of(house(green, _, _, _, _), house(ivory, _, _, _, _), Houses),
    first(house(_, norwegian, _, _, _), Houses),
    middle(house(_, _, milk, _, _), Houses),
    member(house(_, spanish, _, _, dog), Houses),
    member(house(green, _, coffee, _, _), Houses),
    member(house(_, ukrainian, tea, _, _), Houses),
    member(house(_, _, _, oldgold, snails), Houses),
    member(house(yellow, _, _, kools, _), Houses),
    next_to(house(_, _, _, chesterfield, _), house(_, _, _, _, fox), Houses),
    next_to(house(_, _, _, kools, _), house(_, _, _, _, horse), Houses),
    member(house(_, _, orangejuice, luckystrike, _), Houses),
    member(house(_, japanese, _, parliament, _), Houses),
    next_to(house(blue, _, _, _, _), house(_, norwegian, _, _, _), Houses),
    member(house(_, _, water, _, _), Houses),
    member(house(_, Owner, _, _, zebra), Houses).
`
