#!/bin/sh
# Host-benchmark recorder: runs the BenchmarkHost* suite (host
# wall-clock cost of the simulator, as opposed to the simulated
# numbers in the kcmbench tables) and records the best-of-N results
# in BENCH_<n>.json.
#
#   scripts/hostbench.sh [n]        # writes BENCH_<n>.json (default n=0)
#
# Environment:
#   HOSTBENCH_COUNT     repetitions per benchmark; the minimum is kept
#                       (default 5 — the host is shared, single runs
#                       are noisy)
#   HOSTBENCH_TIME      go -benchtime per repetition (default 1s)
#   HOSTBENCH_BASELINE  path to a previously generated BENCH_*.json;
#                       its benchmark block is embedded as "baseline"
#                       so the file carries its own comparison point
set -eu
cd "$(dirname "$0")/.."

n=${1:-0}
count=${HOSTBENCH_COUNT:-5}
btime=${HOSTBENCH_TIME:-1s}
out="BENCH_${n}.json"
raw=$(mktemp)
trap 'rm -f "$raw"' EXIT

go test -run '^$' -bench '^BenchmarkHost' -benchmem -benchtime "$btime" -count "$count" . | tee "$raw"
# The pool benchmark again at explicit parallelism levels: entries keep
# their -cpu suffix (PoolNrev-4, PoolNrev-8) so the file records the
# scaling curve. On a single-core host the curve is flat; host_cpus
# below says which case this file is.
go test -run '^$' -bench '^BenchmarkHostPoolNrev$' -benchmem -benchtime "$btime" -count "$count" -cpu 1,4,8 . | tee -a "$raw"

# The unfused control column: the same warm benchmarks with the
# superinstruction fusion tier off (KCM_FUSE=off, see hostbench_test.go).
# Simulated metrics are identical by construction; the ns/op delta is
# the fusion tier's host-side win.
rawoff=$(mktemp)
trap 'rm -f "$raw" "$rawoff"' EXIT
KCM_FUSE=off go test -run '^$' -bench '^BenchmarkHost(Nrev|Qsort|Queens|Zebra)$' -benchmem -benchtime "$btime" -count "$count" . | tee "$rawoff"

{
    printf '{\n'
    printf '  "bench_id": "%s",\n' "$n"
    printf '  "host_cpus": %s,\n' "$(nproc)"
    printf '  "note": "PoolNrev-N records warm-pool query throughput at GOMAXPROCS=N; scaling is bounded by host_cpus (flat when host_cpus=1)",\n'
    printf '  "protocol": "min of %s runs x %s, warm machine (see hostbench_test.go)",\n' "$count" "$btime"
    printf '  "fusion": "on",\n'
    printf '  "benchmarks": {\n'
    awk '
    /^BenchmarkHost/ {
        name = $1
        sub(/^BenchmarkHost/, "", name)
        # Pool benchmarks keep their -cpu suffix: the scaling across
        # parallelism levels is the datum.
        if (name !~ /^Pool/) sub(/-[0-9]+$/, "", name)
        delete v
        for (i = 3; i < NF; i += 2) v[$(i + 1)] = $i
        if (!(name in ns)) { order[++m] = name }
        if (!(name in ns) || v["ns/op"] + 0 < ns[name] + 0) {
            ns[name]     = v["ns/op"] + 0
            bytes[name]  = v["B/op"] + 0
            allocs[name] = v["allocs/op"] + 0
            klips[name]  = v["simulated-Klips"] + 0
            mips[name]   = v["host-Mips"] + 0
            fused[name]  = v["fused-handlers"] + 0
        }
    }
    END {
        for (i = 1; i <= m; i++) {
            b = order[i]
            printf "    \"%s\": {\"ns_op\": %d, \"bytes_op\": %d, \"allocs_op\": %d, \"simulated_klips\": %.1f, \"host_mips\": %.1f, \"fused_handlers\": %d}%s\n",
                b, ns[b], bytes[b], allocs[b], klips[b], mips[b], fused[b], (i < m) ? "," : ""
        }
    }' "$raw"
    printf '  },\n'
    printf '  "control_nofuse": {\n'
    awk '
    /^BenchmarkHost/ {
        name = $1
        sub(/^BenchmarkHost/, "", name)
        sub(/-[0-9]+$/, "", name)
        delete v
        for (i = 3; i < NF; i += 2) v[$(i + 1)] = $i
        if (!(name in ns)) { order[++m] = name }
        if (!(name in ns) || v["ns/op"] + 0 < ns[name] + 0) {
            ns[name]     = v["ns/op"] + 0
            bytes[name]  = v["B/op"] + 0
            allocs[name] = v["allocs/op"] + 0
        }
    }
    END {
        for (i = 1; i <= m; i++) {
            b = order[i]
            printf "    \"%s\": {\"ns_op\": %d, \"bytes_op\": %d, \"allocs_op\": %d}%s\n",
                b, ns[b], bytes[b], allocs[b], (i < m) ? "," : ""
        }
    }' "$rawoff"
    printf '  }'
    if [ -n "${HOSTBENCH_BASELINE:-}" ] && [ -f "${HOSTBENCH_BASELINE}" ]; then
        printf ',\n  "baseline": {\n'
        # Copy the benchmark block of the baseline file (one line per
        # benchmark in the format written above).
        awk '
        /"benchmarks": \{/ { inb = 1; next }
        inb && /^  \}/     { inb = 0 }
        inb                { print }
        ' "${HOSTBENCH_BASELINE}"
        printf '  }\n'
    else
        printf '\n'
    fi
    printf '}\n'
} > "$out"

echo "wrote $out"
