#!/bin/sh
# Copy-on-write tenant benchmark recorder: what does the K-th tenant
# cost? Runs the BenchmarkTenant{COW,FullCopy} pair (per-tenant setup
# latency and allocation) and the retained-memory measurement
# (per-tenant heap held by K live tenants after GC — the RSS proxy),
# and records both in BENCH_<n>.json.
#
#   scripts/cowbench.sh [n]        # writes BENCH_<n>.json (default n=9)
#
# Environment:
#   COWBENCH_COUNT   repetitions per benchmark; the minimum is kept
#                    (default 5)
#   COWBENCH_TIME    go -benchtime per repetition (default 1s)
set -eu
cd "$(dirname "$0")/.."

n=${1:-9}
count=${COWBENCH_COUNT:-5}
btime=${COWBENCH_TIME:-1s}
out="BENCH_${n}.json"
raw=$(mktemp)
ret=$(mktemp)
trap 'rm -f "$raw" "$ret"' EXIT

go test -run '^$' -bench '^BenchmarkTenant(COW|FullCopy)$' -benchmem \
    -benchtime "$btime" -count "$count" ./internal/dyndb/ | tee "$raw"
KCM_COWBENCH=1 go test -run '^TestTenantRetainedMemory$' -v \
    ./internal/dyndb/ | tee "$ret"

{
    printf '{\n'
    printf '  "bench_id": "%s",\n' "$n"
    printf '  "host_cpus": %s,\n' "$(nproc)"
    printf '  "protocol": "per-tenant cost of the copy-on-write dynamic database vs an N-full-copies baseline (recompile the whole program per tenant); min of %s runs x %s plus a 200-live-tenant retained-heap measurement (see internal/dyndb/cowbench_test.go)",\n' "$count" "$btime"
    printf '  "note": "setup_ns/alloc_bytes are per added tenant; retained_bytes is heap held per tenant after GC with all tenants live (RSS proxy). COW tenants share one immutable base image and carry only a private delta.",\n'
    awk '
    /^BenchmarkTenant/ {
        name = $1
        sub(/^BenchmarkTenant/, "", name)
        sub(/-[0-9]+$/, "", name)
        delete v
        for (i = 3; i < NF; i += 2) v[$(i + 1)] = $i
        if (!(name in ns) || v["ns/op"] + 0 < ns[name] + 0) {
            ns[name]     = v["ns/op"] + 0
            bytes[name]  = v["B/op"] + 0
            allocs[name] = v["allocs/op"] + 0
        }
    }
    END {
        printf "  \"per_tenant_setup\": {\n"
        printf "    \"cow\":       {\"setup_ns\": %d, \"alloc_bytes\": %d, \"allocs\": %d},\n", ns["COW"], bytes["COW"], allocs["COW"]
        printf "    \"full_copy\": {\"setup_ns\": %d, \"alloc_bytes\": %d, \"allocs\": %d},\n", ns["FullCopy"], bytes["FullCopy"], allocs["FullCopy"]
        printf "    \"speedup\": %.1f\n", ns["FullCopy"] / ns["COW"]
        printf "  },\n"
    }' "$raw"
    awk '
    /cowbench: tenants=/                            { split($2, f, "="); k = f[2] }
    /cowbench: cow_retained_bytes_per_tenant=/      { split($2, f, "="); cow = f[2] }
    /cowbench: fullcopy_retained_bytes_per_tenant=/ { split($2, f, "="); full = f[2] }
    END {
        printf "  \"retained_heap\": {\n"
        printf "    \"live_tenants\": %d,\n", k
        printf "    \"cow_retained_bytes_per_tenant\": %d,\n", cow
        printf "    \"full_copy_retained_bytes_per_tenant\": %d,\n", full
        printf "    \"sharing_factor\": %.1f\n", full / cow
        printf "  }\n"
    }' "$ret"
    printf '}\n'
} > "$out"

echo "wrote $out"
