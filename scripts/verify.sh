#!/bin/sh
# Tier-1 verification gate. Everything here must pass before a change
# lands: formatting, vet, build, the full test suite under the race
# detector, and the static bytecode verifier over every example
# program and the whole benchmark suite.
set -eu
cd "$(dirname "$0")/.."

echo '== gofmt'
fmt=$(gofmt -l .)
if [ -n "$fmt" ]; then
    echo "gofmt needed:" >&2
    echo "$fmt" >&2
    exit 1
fi

echo '== go vet'
go vet ./...

echo '== go build'
go build ./...

echo '== go test -race'
go test -race ./...

echo '== kcmvet'
go run ./cmd/kcmvet -bench examples/*/main.go

echo 'verify: all gates passed'
