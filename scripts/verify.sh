#!/bin/sh
# Tier-1 verification gate. Everything here must pass before a change
# lands: formatting, vet, build, the full test suite under the race
# detector, and the static bytecode verifier over every example
# program and the whole benchmark suite.
set -eu
cd "$(dirname "$0")/.."

echo '== gofmt'
fmt=$(gofmt -l .)
if [ -n "$fmt" ]; then
    echo "gofmt needed:" >&2
    echo "$fmt" >&2
    exit 1
fi

echo '== go vet'
go vet ./...

echo '== go build'
go build ./...

echo '== go test -race'
go test -race ./...

echo '== engine pool race tests (plain and traced/profiled)'
go test -race -run 'TestPoolRace|TestPoolTraceRace' ./internal/engine/

echo '== dynamic differential gate (assert-built == statically-compiled, incl. warm counters)'
go test -count=1 -run 'TestDynamicDifferential' ./internal/machine/

echo '== dyndb fuzz smoke (assert/retract vs model, malformed-clause rejection)'
go test -count=1 -run '^$' -fuzz 'FuzzAssertRetract' -fuzztime 5s ./internal/dyndb/
go test -count=1 -run '^$' -fuzz 'FuzzMalformedClause' -fuzztime 5s ./internal/dyndb/

echo '== snapshot round-trip gate (suspend/resume byte-identity, in-process and across restart)'
go test -count=1 -run 'TestSuspendResumeByteIdentical|TestWarmStampParity' ./internal/engine/
go test -count=1 -run 'TestSuspendResumeAcrossRestart|TestDrainParksSessionsToDisk' ./internal/server/

echo '== snapshot blob fuzz smoke (mutated blobs must fail typed, never panic, never corrupt)'
go test -count=1 -run '^$' -fuzz 'FuzzRestoreBlob' -fuzztime 5s ./internal/machine/

echo '== cycle-count pin (kcmbench counters must not drift)'
go test -run 'TestCyclePin' ./internal/bench/

echo '== gc stress (benchmarks in tiny heaps, several collections, under -race)'
go test -race -run 'TestGCStress' ./internal/bench/

echo '== coverage floors (scripts/coverage_floors.txt)'
covprofile=$(mktemp)
trap 'rm -f "$covprofile"' EXIT
covpkgs=$(grep -v '^#' scripts/coverage_floors.txt | awk 'NF {printf "%s%s", sep, "./" substr($1, index($1, "/") + 1); sep=","}')
go test -count=1 "-coverpkg=$covpkgs" "-coverprofile=$covprofile" ./... > /dev/null
# The profile concatenates one block list per test binary; a block is
# covered if any binary hit it, so dedupe by block key before summing.
awk 'NR > 1 {
    key = $1; stmts[key] = $2
    if ($3 > 0) hit[key] = 1
}
END {
    for (k in stmts) {
        pkg = k
        sub(/:.*/, "", pkg)
        sub(/\/[^\/]*\.go$/, "", pkg)
        tot[pkg] += stmts[k]
        if (hit[k]) cov[pkg] += stmts[k]
    }
    while ((getline line < "scripts/coverage_floors.txt") > 0) {
        if (line ~ /^#/ || line !~ /[^ ]/) continue
        split(line, f, " ")
        pct = (tot[f[1]] > 0) ? 100 * cov[f[1]] / tot[f[1]] : 0
        printf "%-28s %5.1f%% (floor %s%%)\n", f[1], pct, f[2]
        if (pct < f[2] + 0) {
            print "FAIL: " f[1] " coverage " pct "% below floor " f[2] "%" > "/dev/stderr"
            bad = 1
        }
    }
    exit bad
}' "$covprofile"

echo '== fusion A/B gate (simulated tables must be byte-identical with the fusion tier off)'
tabfuse=$(mktemp); tabnofuse=$(mktemp)
trap 'rm -f "$covprofile" "$tabfuse" "$tabnofuse"' EXIT
go run ./cmd/kcmbench -table all > "$tabfuse"
go run ./cmd/kcmbench -fuse=false -table all > "$tabnofuse"
if ! diff -u "$tabfuse" "$tabnofuse"; then
    echo "FAIL: kcmbench tables differ between -fuse and -fuse=false" >&2
    exit 1
fi

echo '== kcmd smoke (ephemeral port: query + stream + cancel + tenant + suspend/resume across restart, clean drain)'
go run ./cmd/kcmd -smoke

echo '== kcmvet (strict: analyzer warnings are errors)'
go run ./cmd/kcmvet -strict -bench examples/*/main.go

echo '== kcmlint (host-source lint: sentinel errors, hot-loop allocs, Kind switches, handler discipline)'
go run ./cmd/kcmlint .

echo '== host-bench smoke (warm nrev, fused handlers on, must run allocation-free)'
out=$(go test -run '^$' -bench '^BenchmarkHostNrev$' -benchtime 1x -benchmem .)
echo "$out"
echo "$out" | awk '
/^BenchmarkHostNrev/ {
    seen = 1
    for (i = 1; i < NF; i++) {
        if ($(i + 1) == "allocs/op" && $i + 0 != 0) {
            print "FAIL: " $i " allocs/op on warm nrev, want 0" > "/dev/stderr"
            exit 1
        }
    }
}
END { if (!seen) { print "FAIL: BenchmarkHostNrev did not run" > "/dev/stderr"; exit 1 } }
'

echo 'verify: all gates passed'
