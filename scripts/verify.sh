#!/bin/sh
# Tier-1 verification gate. Everything here must pass before a change
# lands: formatting, vet, build, the full test suite under the race
# detector, and the static bytecode verifier over every example
# program and the whole benchmark suite.
set -eu
cd "$(dirname "$0")/.."

echo '== gofmt'
fmt=$(gofmt -l .)
if [ -n "$fmt" ]; then
    echo "gofmt needed:" >&2
    echo "$fmt" >&2
    exit 1
fi

echo '== go vet'
go vet ./...

echo '== go build'
go build ./...

echo '== go test -race'
go test -race ./...

echo '== engine pool race test'
go test -race -run 'TestPoolRace' ./internal/engine/

echo '== cycle-count pin (kcmbench counters must not drift)'
go test -run 'TestCyclePin' ./internal/bench/

echo '== kcmvet'
go run ./cmd/kcmvet -bench examples/*/main.go

echo '== host-bench smoke (warm nrev must run allocation-free)'
out=$(go test -run '^$' -bench '^BenchmarkHostNrev$' -benchtime 1x -benchmem .)
echo "$out"
echo "$out" | awk '
/^BenchmarkHostNrev/ {
    seen = 1
    for (i = 1; i < NF; i++) {
        if ($(i + 1) == "allocs/op" && $i + 0 != 0) {
            print "FAIL: " $i " allocs/op on warm nrev, want 0" > "/dev/stderr"
            exit 1
        }
    }
}
END { if (!seen) { print "FAIL: BenchmarkHostNrev did not run" > "/dev/stderr"; exit 1 } }
'

echo 'verify: all gates passed'
