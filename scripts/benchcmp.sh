#!/bin/sh
# Compare two BENCH_*.json files written by scripts/hostbench.sh:
#
#   scripts/benchcmp.sh BENCH_1.json BENCH_2.json
#
# Prints per-benchmark old/new ns per run, the speedup factor, and the
# allocation counts. A file whose "baseline" block should serve as the
# old side can be compared against itself:
#
#   scripts/benchcmp.sh -baseline BENCH_2.json
#
# Plain sh + awk; no jq in the image.
set -eu

if [ "${1:-}" = "-baseline" ]; then
    [ $# -eq 2 ] || { echo "usage: $0 -baseline BENCH_n.json" >&2; exit 2; }
    old=$2 oldblock=baseline
    new=$2 newblock=benchmarks
else
    [ $# -eq 2 ] || { echo "usage: $0 OLD.json NEW.json" >&2; exit 2; }
    old=$1 oldblock=benchmarks
    new=$2 newblock=benchmarks
fi

# extract FILE BLOCK: prints "name ns allocs" per benchmark of BLOCK.
extract() {
    awk -v want="\"$2\": {" '
    index($0, want) && !done { inb = 1; next }
    inb && /^  \}/           { inb = 0; done = 1 }
    inb {
        line = $0
        if (match(line, /"[A-Za-z0-9_-]+": \{/)) {
            name = substr(line, RSTART + 1, RLENGTH - 5)
            ns = allocs = "?"
            if (match(line, /"ns_op": [0-9]+/))     ns     = substr(line, RSTART + 9, RLENGTH - 9)
            if (match(line, /"allocs_op": [0-9]+/)) allocs = substr(line, RSTART + 13, RLENGTH - 13)
            print name, ns, allocs
        }
    }' "$1"
}

tmpo=$(mktemp) tmpn=$(mktemp)
trap 'rm -f "$tmpo" "$tmpn"' EXIT
extract "$old" "$oldblock" > "$tmpo"
extract "$new" "$newblock" > "$tmpn"

awk -v oldf="$tmpo" -v newf="$tmpn" '
BEGIN {
    while ((getline line < oldf) > 0) {
        split(line, f, " "); ons[f[1]] = f[2]; oal[f[1]] = f[3]
    }
    printf "%-12s %12s %12s %9s %10s %10s\n",
        "benchmark", "old ns/op", "new ns/op", "speedup", "old allocs", "new allocs"
    while ((getline line < newf) > 0) {
        split(line, f, " ")
        b = f[1]; nns = f[2]; nal = f[3]
        if (b in ons && ons[b] + 0 > 0) {
            printf "%-12s %12d %12d %8.2fx %10d %10d\n",
                b, ons[b], nns, ons[b] / nns, oal[b], nal
        } else {
            printf "%-12s %12s %12d %9s %10s %10d\n", b, "-", nns, "-", "-", nal
        }
    }
}'
