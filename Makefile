GO ?= go

.PHONY: build test verify vet lint fmt bench cowbench tables

# BENCH_N selects the BENCH_<n>.json the host benchmarks write.
BENCH_N ?= 0

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The tier-1 gate: formatting, vet, build, race-enabled tests, and the
# static bytecode verifier over the examples and the benchmark suite.
verify:
	sh scripts/verify.sh

vet:
	$(GO) run ./cmd/kcmvet -strict -bench examples/*/main.go

# Host-source lint: sentinel-error comparisons, allocations in the
# machine's hot step loops, non-exhaustive trace.Kind switches.
lint:
	$(GO) run ./cmd/kcmlint .

fmt:
	gofmt -w .

# Host wall-clock benchmarks (BenchmarkHost*): best-of-N runs recorded
# in BENCH_$(BENCH_N).json; compare two recordings with
# scripts/benchcmp.sh.
bench:
	sh scripts/hostbench.sh $(BENCH_N)

# Copy-on-write tenant benchmarks: per-tenant setup cost and retained
# heap for COW clones vs full per-tenant recompiles (BENCH_9.json).
cowbench:
	sh scripts/cowbench.sh 9

# Simulated results: the paper's tables (section 4).
tables:
	$(GO) run ./cmd/kcmbench
