GO ?= go

.PHONY: build test verify vet fmt bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The tier-1 gate: formatting, vet, build, race-enabled tests, and the
# static bytecode verifier over the examples and the benchmark suite.
verify:
	sh scripts/verify.sh

vet:
	$(GO) run ./cmd/kcmvet -bench examples/*/main.go

fmt:
	gofmt -w .

bench:
	$(GO) run ./cmd/kcmbench
